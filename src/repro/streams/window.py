"""CQL time-based sliding windows and the ``timeSlidingWindow`` operator.

EXASTREAM turns SQLite into a DSMS with two UDFs; the first is
``timeSlidingWindow``, which "groups tuples that belong to the same time
window and associates them with a unique window id".  Semantics follow
CQL (Arasu, Babu, Widom 2006): a window with range ``r`` and slide ``s``
materialises, at each pulse time ``t_k = start + k*s``, the bag of tuples
with timestamp in ``(t_k - r, t_k]``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Iterable, Iterator
from typing import Any

__all__ = [
    "WindowSpec",
    "WindowBatch",
    "WindowPulse",
    "PulseResume",
    "Heartbeat",
    "time_sliding_window",
    "time_window_pulses",
    "PanePlan",
    "PaneSlice",
    "PaneWindow",
    "pane_plan",
]


@dataclass(frozen=True, slots=True)
class WindowSpec:
    """Window parameters: range and slide, in seconds of event time."""

    range_seconds: float
    slide_seconds: float

    def __post_init__(self) -> None:
        if self.range_seconds <= 0:
            raise ValueError("window range must be positive")
        if self.slide_seconds <= 0:
            raise ValueError("window slide must be positive")

    def window_end(self, window_id: int, start: float) -> float:
        """Event time at which window ``window_id`` closes."""
        return start + window_id * self.slide_seconds


@dataclass(slots=True)
class WindowBatch:
    """The contents of one window instance.

    ``tuples`` preserves arrival (timestamp) order; ``window_id`` is the
    unique id the UDF attaches, shared with :mod:`repro.streams.wcache`.
    """

    window_id: int
    start: float
    end: float
    tuples: list[tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.tuples)

    def with_window_id_column(self) -> list[tuple[Any, ...]]:
        """Tuples extended with the window id — the UDF's relational view."""
        return [t + (self.window_id,) for t in self.tuples]


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """A punctuation: "no more tuples before ``ts``" — carries no data.

    Sharded execution splits one stream into per-shard substreams; a
    shard whose substream ends early must still close every window the
    full stream closes, or the shard falls behind the global grid.  The
    partitioner appends a heartbeat at the stream's final timestamp so
    each shard's watermark advances exactly as far as the full stream's.
    """

    ts: float


@dataclass(slots=True)
class WindowPulse:
    """One pulse of the windowing engine, *before* batch materialisation.

    ``fresh`` holds the tuples first delivered at this pulse (each tuple
    appears in exactly one pulse's ``fresh``, in arrival order; a tuple
    past a window's end triggers that window's drain before it is
    appended, so fresh tuples never outrun their delivering pulse's
    ``end``).  ``buffer`` is the engine's **live** window buffer, pruned
    to ``ts >= start``; it is only valid until the generator resumes,
    and slicing it by ``start <= ts <= end`` yields exactly the window's
    batch.  Pulses let pane-incremental readers touch O(slide) tuples
    per window instead of materialising O(range) batches.
    """

    window_id: int
    start: float
    end: float
    fresh: list[tuple[Any, ...]]
    buffer: deque[tuple[Any, ...]]
    #: the pulse grid anchor — pane slicing re-derives window boundaries
    #: with the exact float expressions batch assembly uses
    anchor: float = 0.0
    #: source items fully consumed when this pulse was yielded — a
    #:  triggering item still in flight is *not* counted, so a resumed
    #:  generator re-reads it and replays exactly the pending pulses
    processed: int = 0
    #: pulse came from the end-of-stream drain: nothing follows it, and
    #: a resume from it must not re-run that drain
    eos: bool = False

    def materialise(self, time_index: int) -> WindowBatch:
        """Assemble the full CQL batch from the live buffer (O(range))."""
        start, end = self.start, self.end
        contents = [t for t in self.buffer if start <= t[time_index] <= end]
        return WindowBatch(self.window_id, start, end, contents)


@dataclass(frozen=True, slots=True)
class PulseResume:
    """Where to pick a pulse generator back up after a checkpoint.

    Captured from the last pulse a consumer saw: the grid ``anchor``,
    the ``next_window`` to emit, the live ``buffer`` contents, and how
    many source items were fully ``processed`` (the caller skips that
    many before handing the source back in).  ``eos`` marks a resume
    from the end-of-stream drain pulse — the resumed generator yields
    nothing, matching an uninterrupted run that was already past its
    final drain.
    """

    anchor: float
    next_window: int
    buffer: tuple[tuple[Any, ...], ...] | list[tuple[Any, ...]]
    processed: int = 0
    eos: bool = False


def time_window_pulses(
    tuples: Iterable[tuple[Any, ...] | Heartbeat],
    spec: WindowSpec,
    time_index: int,
    start: float | None = None,
    resume: PulseResume | None = None,
) -> Iterator[WindowPulse]:
    """Stream tuples into window pulses (the lazy core of
    :func:`time_sliding_window`).

    ``start`` anchors the pulse grid; when omitted, the first tuple's
    timestamp is used (the window closing exactly at that instant fires
    first).  Windows are emitted as soon as event time passes their end
    (watermark = max seen timestamp, no lateness).

    ``resume`` restarts the generator mid-stream from checkpointed
    state: the caller skips ``resume.processed`` source items and the
    generator continues as if it had consumed them itself.  A pulse's
    triggering item is never counted as processed, so re-reading it
    re-yields exactly the pulses the pre-checkpoint run had not yet
    delivered — byte-identical to an uninterrupted run.
    """
    if resume is not None and resume.eos:
        return
    buffer: deque[tuple[Any, ...]] = (
        deque(resume.buffer) if resume is not None else deque()
    )
    fresh: list[tuple[Any, ...]] = []
    anchor: float | None = resume.anchor if resume is not None else start
    next_window = resume.next_window if resume is not None else 0
    processed = resume.processed if resume is not None else 0

    def drain_until(watermark: float, eos: bool = False) -> Iterator[WindowPulse]:
        nonlocal next_window, fresh
        assert anchor is not None
        while anchor + next_window * spec.slide_seconds <= watermark:
            end = anchor + next_window * spec.slide_seconds
            begin = end - spec.range_seconds
            while buffer and buffer[0][time_index] < begin:
                buffer.popleft()
            delivered, fresh = fresh, []
            yield WindowPulse(
                next_window, begin, end, delivered, buffer, anchor, processed, eos
            )
            next_window += 1

    for item in tuples:
        if isinstance(item, Heartbeat):
            if anchor is None:
                anchor = item.ts
            if item.ts > anchor + next_window * spec.slide_seconds:
                yield from drain_until(_previous_pulse(anchor, spec, item.ts))
            processed += 1
            continue
        timestamp = item[time_index]
        if anchor is None:
            anchor = timestamp
        # Close every window strictly before this event's time.
        if timestamp > anchor + next_window * spec.slide_seconds:
            yield from drain_until(
                _previous_pulse(anchor, spec, timestamp)
            )
        buffer.append(item)
        fresh.append(item)
        processed += 1
    if anchor is not None:
        yield from drain_until(
            anchor + next_window * spec.slide_seconds, eos=True
        )


def time_sliding_window(
    tuples: Iterable[tuple[Any, ...] | Heartbeat],
    spec: WindowSpec,
    time_index: int,
    start: float | None = None,
) -> Iterator[WindowBatch]:
    """Stream tuples into CQL window batches.

    ``start`` anchors the pulse grid; when omitted, the first tuple's
    timestamp is used (the window closing exactly at that instant fires
    first).  The interval is closed on both ends, matching the paper's
    ``[NOW - range, NOW]`` notation.  Windows are emitted as soon as event
    time passes their end (watermark = max seen timestamp, no lateness).

    >>> rows = [(float(t),) for t in range(5)]
    >>> batches = list(time_sliding_window(rows, WindowSpec(2, 1), 0))
    >>> [(b.window_id, len(b)) for b in batches][:3]
    [(0, 1), (1, 2), (2, 3)]
    """
    for pulse in time_window_pulses(tuples, spec, time_index, start):
        yield pulse.materialise(time_index)


def _previous_pulse(anchor: float, spec: WindowSpec, timestamp: float) -> float:
    """The latest pulse time strictly before ``timestamp``."""
    k = math.ceil((timestamp - anchor) / spec.slide_seconds) - 1
    return anchor + k * spec.slide_seconds


# ---------------------------------------------------------------------------
# Pane decomposition (incremental sliding-window execution)
# ---------------------------------------------------------------------------
#
# When ``range >> slide`` consecutive windows overlap almost entirely; the
# overlap decomposes into non-overlapping *panes* of width gcd(range, slide)
# so each tuple is processed once, when its pane first appears, and every
# window is the combination of its constituent panes (Li et al., "No pane,
# no gain").  The closed ``[end - range, end]`` CQL interval decomposes as
#
#   window k  =  panes [k*nps - npw, k*nps)  ∪  { tuples with ts == end }
#
# where panes are half-open ``[pane_start, pane_start + pane)`` intervals,
# ``npw = range/pane`` and ``nps = slide/pane``.  The trailing singleton is
# the window's *edge*: tuples exactly at the pulse instant, which belong to
# the not-yet-complete next pane.

#: Windows needing more panes than this are not worth slicing (and specs
#: whose exact rational gcd is tiny — e.g. 0.1 vs 0.3 in binary floats —
#: are excluded by the same bound).
MAX_PANES_PER_WINDOW = 4096


@dataclass(frozen=True, slots=True)
class PanePlan:
    """Pane decomposition of one window spec (``None``-able; see
    :func:`pane_plan`)."""

    pane_seconds: float
    panes_per_window: int
    panes_per_slide: int

    def window_panes(self, window_id: int) -> range:
        """Global ids of the complete panes of window ``window_id``.

        Pane ``j`` covers event time ``[anchor + j*pane, anchor +
        (j+1)*pane)``; ids are negative for the partial windows before the
        anchor.  The window's edge tuples (``ts == end``) sit at the start
        of pane ``window_id * panes_per_slide``, which is excluded here
        because it is not complete yet.
        """
        last = window_id * self.panes_per_slide
        return range(last - self.panes_per_window, last)


def pane_plan(spec: WindowSpec) -> PanePlan | None:
    """Pane decomposition for ``spec``, or ``None`` when not worthwhile.

    ``None`` when windows do not overlap (``range <= slide``: tumbling or
    sampling windows reuse nothing) or when the exact rational
    gcd(range, slide) yields more than :data:`MAX_PANES_PER_WINDOW` panes
    per window.  The gcd is computed over the *exact* binary values of the
    float parameters, so any spec that passes also has exactly
    representable pane arithmetic.
    """
    if spec.range_seconds <= spec.slide_seconds:
        return None
    fr = Fraction(spec.range_seconds)
    fs = Fraction(spec.slide_seconds)
    gcd = Fraction(
        math.gcd(fr.numerator * fs.denominator, fs.numerator * fr.denominator),
        fr.denominator * fs.denominator,
    )
    panes_per_window = fr / gcd
    panes_per_slide = fs / gcd
    if panes_per_window > MAX_PANES_PER_WINDOW:
        return None
    pane = float(gcd)
    npw, nps = int(panes_per_window), int(panes_per_slide)
    # The float round-trip must be exact, or pane boundaries would drift
    # off the window grid.
    if pane * npw != spec.range_seconds or pane * nps != spec.slide_seconds:
        return None
    return PanePlan(pane, npw, nps)


@dataclass(slots=True)
class PaneSlice:
    """The tuples of one materialised pane, in stream order.

    Edge slices (a window's ``ts == end`` tuples, cached per window id)
    reuse this shape and additionally record the window's exact ``end``
    so pane-served windows report the same pulse instant as batch-served
    ones.
    """

    pane_id: int
    tuples: list[tuple[Any, ...]]
    end: float = 0.0

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass(slots=True)
class PaneWindow:
    """One window resolved into panes: the incremental execution view.

    ``panes`` are ordered oldest-first and cover ``[end - range, end)``;
    ``edge`` holds the tuples with ``ts == end`` exactly.  Concatenated,
    they reproduce the window's batch tuples in arrival order (the
    reader refuses to produce a :class:`PaneWindow` whenever arrival
    order and pane order could diverge).
    """

    window_id: int
    end: float
    panes: list[PaneSlice]
    edge: list[tuple[Any, ...]]

    def __len__(self) -> int:
        return sum(len(p) for p in self.panes) + len(self.edge)
