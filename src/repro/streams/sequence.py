"""STARQL sequencing semantics.

STARQL "extends snapshot semantics for window operators with sequencing
semantics": the contents of a window are partitioned into a *sequence of
states*.  The standard method ``StdSeq`` groups tuples by their exact
timestamp; state ``i`` holds everything measured at the i-th distinct
timestamp inside the window.  HAVING clauses then quantify over state
indexes (``EXISTS ?k IN SEQ``, ``FORALL ?i < ?j IN seq``) and evaluate
graph patterns *per state* under the ontology — the sequence can also
respect integrity constraints such as functionality of measurement values
(``assert_functional``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby
from collections.abc import Callable, Iterable
from typing import Any

from ..rdf import Graph, Triple
from .window import WindowBatch

__all__ = ["State", "StateSequence", "build_sequence", "SequencingError"]


class SequencingError(ValueError):
    """Raised when sequencing violates a declared integrity constraint."""


@dataclass
class State:
    """One state of a window sequence."""

    index: int
    timestamp: Any
    tuples: list[tuple[Any, ...]]
    graph: Graph | None = None

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass
class StateSequence:
    """The ordered states of one window instance."""

    window_id: int
    states: list[State]

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self):
        return iter(self.states)

    def __getitem__(self, index: int) -> State:
        return self.states[index]

    def indexes(self) -> range:
        return range(len(self.states))


def build_sequence(
    batch: WindowBatch,
    time_index: int,
    to_triples: Callable[[tuple[Any, ...]], Iterable[Triple]] | None = None,
    functional_key: Callable[[tuple[Any, ...]], tuple] | None = None,
) -> StateSequence:
    """Build the ``StdSeq`` state sequence of a window batch.

    ``to_triples`` optionally materialises each state as an RDF graph (the
    ABox snapshot STARQL's HAVING patterns are evaluated against).
    ``functional_key`` declares a functionality constraint: two tuples in
    the same state with equal keys but different payloads raise
    :class:`SequencingError` (e.g. one sensor reporting two different
    values at the same instant).
    """
    ordered = sorted(batch.tuples, key=lambda t: t[time_index])
    states: list[State] = []
    for index, (timestamp, group) in enumerate(
        groupby(ordered, key=lambda t: t[time_index])
    ):
        members = list(group)
        if functional_key is not None:
            seen: dict[tuple, tuple[Any, ...]] = {}
            for member in members:
                key = functional_key(member)
                other = seen.get(key)
                if other is not None and other != member:
                    raise SequencingError(
                        f"functionality violated at t={timestamp}: "
                        f"{other} vs {member}"
                    )
                seen[key] = member
        graph = None
        if to_triples is not None:
            graph = Graph()
            for member in members:
                graph.update(to_triples(member))
        states.append(State(index, timestamp, members, graph))
    return StateSequence(batch.window_id, states)
