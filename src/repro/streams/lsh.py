"""Locality-Sensitive Hashing for cross-stream correlation.

OPTIQUE "used UDFs to implement ... data mining algorithms such as the
Locality-Sensitive Hashing technique for computing the correlation
between values of multiple streams" — one of the 20 catalog tasks computes
the Pearson correlation coefficient between turbine streams.

We implement the classic sign-random-projection (SimHash) scheme: after
mean-centring a window vector, each of ``num_bits`` random hyperplanes
contributes one sign bit.  For mean-centred vectors the cosine similarity
equals the Pearson correlation, and the collision probability of one bit
is ``1 - theta/pi``, so::

    corr ~= cos(pi * hamming_fraction)

Banded signatures let us find highly correlated pairs among thousands of
sensors without the quadratic exact computation (benchmark E9).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = ["StreamSignature", "LSHCorrelator", "exact_pearson"]


def exact_pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """The exact Pearson correlation coefficient of two equal-length series."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValueError("series must have equal length")
    x = x - x.mean()
    y = y - y.mean()
    denominator = float(np.linalg.norm(x) * np.linalg.norm(y))
    if denominator == 0.0:
        return 0.0
    return float(np.dot(x, y) / denominator)


@dataclass(frozen=True)
class StreamSignature:
    """The LSH signature of one stream window."""

    key: object
    bits: np.ndarray  # uint8 array of 0/1

    def hamming_fraction(self, other: StreamSignature) -> float:
        if self.bits.shape != other.bits.shape:
            raise ValueError("signatures must have equal bit width")
        return float(np.mean(self.bits != other.bits))


class LSHCorrelator:
    """Sign-random-projection sketches over fixed-length windows.

    ``vector_length`` must match the window vectors being sketched (the
    hyperplanes are drawn once, so all signatures are comparable).
    """

    def __init__(
        self,
        vector_length: int,
        num_bits: int = 256,
        bands: int = 32,
        seed: int = 7,
    ) -> None:
        if num_bits % bands != 0:
            raise ValueError("num_bits must be divisible by bands")
        self.vector_length = vector_length
        self.num_bits = num_bits
        self.bands = bands
        rng = np.random.default_rng(seed)
        self._planes = rng.standard_normal((num_bits, vector_length))

    def signature(self, key: object, values: Sequence[float]) -> StreamSignature:
        """Sketch one window vector (mean-centred internally)."""
        x = np.asarray(values, dtype=float)
        if x.shape != (self.vector_length,):
            raise ValueError(
                f"expected vector of length {self.vector_length}, got {x.shape}"
            )
        x = x - x.mean()
        bits = (self._planes @ x >= 0.0).astype(np.uint8)
        return StreamSignature(key, bits)

    def estimate_correlation(
        self, a: StreamSignature, b: StreamSignature
    ) -> float:
        """Estimate Pearson correlation from two signatures."""
        return float(np.cos(np.pi * a.hamming_fraction(b)))

    def candidate_pairs(
        self, signatures: Sequence[StreamSignature]
    ) -> set[tuple[int, int]]:
        """Banding: index pairs colliding in at least one band."""
        rows = self.num_bits // self.bands
        buckets: dict[tuple[int, bytes], list[int]] = defaultdict(list)
        for index, signature in enumerate(signatures):
            for band in range(self.bands):
                chunk = signature.bits[band * rows : (band + 1) * rows]
                buckets[(band, chunk.tobytes())].append(index)
        pairs: set[tuple[int, int]] = set()
        for members in buckets.values():
            if len(members) < 2:
                continue
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    pairs.add((min(a, b), max(a, b)))
        return pairs

    def find_correlated(
        self,
        signatures: Sequence[StreamSignature],
        threshold: float = 0.9,
    ) -> list[tuple[object, object, float]]:
        """(key_a, key_b, estimated_corr) for candidate pairs above threshold."""
        results = []
        for i, j in sorted(self.candidate_pairs(signatures)):
            estimate = self.estimate_correlation(signatures[i], signatures[j])
            if estimate >= threshold:
                results.append((signatures[i].key, signatures[j].key, estimate))
        results.sort(key=lambda r: -r[2])
        return results
