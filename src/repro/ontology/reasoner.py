"""Classification and consistency reasoning for OWL 2 QL ontologies.

DL-Lite_R reasoning is polynomial: subsumption between *basic concepts*
(named classes and unqualified existentials) reduces to reachability in a
saturation graph, and ABox consistency reduces to checking each negative
inclusion against the saturated positive closure.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from collections.abc import Hashable

from ..rdf import IRI
from .model import (
    AtomicClass,
    Attribute,
    ClassAssertion,
    ClassExpression,
    DisjointClasses,
    DisjointProperties,
    Existential,
    Ontology,
    PropertyAssertion,
    PropertyExpression,
    Role,
    SubClassOf,
    SubPropertyOf,
    Thing,
    normalize,
)

__all__ = ["Reasoner", "InconsistentOntologyError"]


class InconsistentOntologyError(Exception):
    """Raised when the ABox violates a (derived) negative inclusion."""


def _role_key(prop: PropertyExpression) -> tuple[IRI, bool]:
    return (prop.iri, prop.inverse)


def _concept_key(expr: ClassExpression) -> Hashable:
    if isinstance(expr, AtomicClass):
        return ("class", expr.iri)
    if isinstance(expr, Existential) and expr.filler is None:
        return ("exists", expr.property.iri, expr.property.inverse)
    if isinstance(expr, Thing):
        return ("thing",)
    raise ValueError(f"not a basic concept: {expr}")


@dataclass
class Reasoner:
    """Precomputed subsumption closures for one ontology.

    The ontology is :func:`normalized <repro.ontology.model.normalize>` on
    construction, so qualified existentials never reach the closure
    computation.

    >>> onto = Ontology()
    >>> a, b = onto.declare_class(IRI("urn:A")), onto.declare_class(IRI("urn:B"))
    >>> _ = onto.add(SubClassOf(a, b))
    >>> Reasoner(onto).is_subclass_of(a, b)
    True
    """

    ontology: Ontology
    _concept_supers: dict[Hashable, set[Hashable]] = field(init=False)
    _role_supers: dict[tuple[IRI, bool], set[tuple[IRI, bool]]] = field(init=False)

    def __post_init__(self) -> None:
        self.ontology = normalize(self.ontology)
        self._role_supers = self._saturate_roles()
        self._concept_supers = self._saturate_concepts()

    # -- closure construction ------------------------------------------------

    def _saturate_roles(self) -> dict[tuple[IRI, bool], set[tuple[IRI, bool]]]:
        """Transitive closure of role inclusions, closed under inversion."""
        edges: dict[tuple[IRI, bool], set[tuple[IRI, bool]]] = defaultdict(set)
        for axiom in self.ontology.property_inclusions:
            sub, sup = axiom.sub, axiom.sup
            edges[_role_key(sub)].add(_role_key(sup))
            if isinstance(sub, Role) and isinstance(sup, Role):
                edges[_role_key(sub.inverted())].add(_role_key(sup.inverted()))
        closure: dict[tuple[IRI, bool], set[tuple[IRI, bool]]] = {}
        nodes = set(edges)
        for targets in edges.values():
            nodes |= targets
        for prop in self.ontology.object_properties:
            nodes.add((prop, False))
            nodes.add((prop, True))
        for prop in self.ontology.data_properties:
            nodes.add((prop, False))
        for node in nodes:
            reached = {node}
            queue = deque([node])
            while queue:
                current = queue.popleft()
                for nxt in edges.get(current, ()):
                    if nxt not in reached:
                        reached.add(nxt)
                        queue.append(nxt)
            closure[node] = reached
        return closure

    def _saturate_concepts(self) -> dict[Hashable, set[Hashable]]:
        """Reachability over class inclusions + inferred existential edges.

        ``R ⊑ S`` implies ``∃R ⊑ ∃S`` and ``∃R⁻ ⊑ ∃S⁻``; those edges are
        materialised so concept subsumption is plain graph reachability.
        """
        edges: dict[Hashable, set[Hashable]] = defaultdict(set)
        for axiom in self.ontology.class_inclusions:
            if isinstance(axiom.sup, Thing):
                continue
            edges[_concept_key(axiom.sub)].add(_concept_key(axiom.sup))
        for sub_key, supers in self._role_supers.items():
            iri, inverse = sub_key
            for sup_iri, sup_inverse in supers:
                if (iri, inverse) == (sup_iri, sup_inverse):
                    continue
                edges[("exists", iri, inverse)].add(("exists", sup_iri, sup_inverse))
                edges[("exists", iri, not inverse)].add(
                    ("exists", sup_iri, not sup_inverse)
                )
        nodes: set[Hashable] = set(edges)
        for targets in edges.values():
            nodes |= targets
        for cls in self.ontology.classes:
            nodes.add(("class", cls))
        closure: dict[Hashable, set[Hashable]] = {}
        for node in nodes:
            reached = {node}
            queue = deque([node])
            while queue:
                current = queue.popleft()
                for nxt in edges.get(current, ()):
                    if nxt not in reached:
                        reached.add(nxt)
                        queue.append(nxt)
            closure[node] = reached
        return closure

    # -- public subsumption API ----------------------------------------------

    def is_subclass_of(self, sub: ClassExpression, sup: ClassExpression) -> bool:
        """Entailment ``sub ⊑ sup`` over basic concepts."""
        if isinstance(sup, Thing):
            return True
        sub_key = _concept_key(sub)
        sup_key = _concept_key(sup)
        if sub_key == sup_key:
            return True
        return sup_key in self._concept_supers.get(sub_key, set())

    def is_subproperty_of(
        self, sub: PropertyExpression, sup: PropertyExpression
    ) -> bool:
        """Entailment ``sub ⊑ sup`` over (possibly inverse) properties."""
        sub_key, sup_key = _role_key(sub), _role_key(sup)
        if sub_key == sup_key:
            return True
        return sup_key in self._role_supers.get(sub_key, set())

    def superclasses(self, cls: AtomicClass) -> set[AtomicClass]:
        """All named classes subsuming ``cls`` (excluding itself)."""
        result = set()
        for key in self._concept_supers.get(_concept_key(cls), set()):
            if isinstance(key, tuple) and key[0] == "class" and key[1] != cls.iri:
                result.add(AtomicClass(key[1]))
        return result

    def subclasses(self, cls: AtomicClass) -> set[AtomicClass]:
        """All named classes subsumed by ``cls`` (excluding itself)."""
        target = _concept_key(cls)
        result = set()
        for key, supers in self._concept_supers.items():
            if (
                isinstance(key, tuple)
                and key[0] == "class"
                and key[1] != cls.iri
                and target in supers
            ):
                result.add(AtomicClass(key[1]))
        return result

    def subproperties(self, prop: PropertyExpression) -> set[PropertyExpression]:
        """All properties subsumed by ``prop`` (excluding itself)."""
        target = _role_key(prop)
        result: set[PropertyExpression] = set()
        for key, supers in self._role_supers.items():
            if key != target and target in supers:
                iri, inverse = key
                if iri in self.ontology.data_properties:
                    result.add(Attribute(iri))
                else:
                    result.add(Role(iri, inverse))
        return result

    def classify(self) -> dict[IRI, set[IRI]]:
        """Map every named class to the set of its named superclasses."""
        hierarchy: dict[IRI, set[IRI]] = {}
        for cls in self.ontology.classes:
            hierarchy[cls] = {
                sup.iri for sup in self.superclasses(AtomicClass(cls))
            }
        return hierarchy

    # -- consistency -----------------------------------------------------------

    def _entailed_concepts(self, individual: IRI) -> set[Hashable]:
        """Basic concepts the ABox (+TBox) entails for ``individual``."""
        base: set[Hashable] = set()
        for assertion in self.ontology.class_assertions:
            if assertion.individual == individual:
                base.add(_concept_key(assertion.cls))
        for assertion in self.ontology.property_assertions:
            prop = assertion.property
            if assertion.subject == individual:
                base.add(("exists", prop.iri, prop.inverse))
            if (
                isinstance(prop, Role)
                and isinstance(assertion.value, IRI)
                and assertion.value == individual
            ):
                base.add(("exists", prop.iri, not prop.inverse))
        entailed = set(base)
        for key in base:
            entailed |= self._concept_supers.get(key, set())
        return entailed

    def check_consistency(self) -> None:
        """Raise :class:`InconsistentOntologyError` on a violated disjointness."""
        individuals = {a.individual for a in self.ontology.class_assertions}
        individuals |= {a.subject for a in self.ontology.property_assertions}
        for assertion in self.ontology.property_assertions:
            if isinstance(assertion.value, IRI):
                individuals.add(assertion.value)
        disjoint_pairs = [
            (_concept_key(d.a), _concept_key(d.b))
            for d in self.ontology.disjoint_classes
        ]
        for individual in individuals:
            entailed = self._entailed_concepts(individual)
            for a_key, b_key in disjoint_pairs:
                if a_key in entailed and b_key in entailed:
                    raise InconsistentOntologyError(
                        f"{individual.value} belongs to disjoint concepts "
                        f"{a_key} and {b_key}"
                    )
        self._check_property_disjointness()

    def _check_property_disjointness(self) -> None:
        pairs: dict[tuple[IRI, IRI], set[tuple[IRI, bool]]] = defaultdict(set)
        for assertion in self.ontology.property_assertions:
            if not isinstance(assertion.value, IRI):
                continue
            prop = assertion.property
            if not isinstance(prop, Role):
                continue
            subject, value = assertion.subject, assertion.value
            if prop.inverse:
                subject, value = value, subject
            for sup_iri, sup_inv in self._role_supers.get(
                (prop.iri, False), {(prop.iri, False)}
            ):
                if sup_inv:
                    pairs[(value, subject)].add((sup_iri, False))
                else:
                    pairs[(subject, value)].add((sup_iri, False))
        for disjoint in self.ontology.disjoint_properties:
            a_key = _role_key(disjoint.a)
            b_key = _role_key(disjoint.b)
            for held in pairs.values():
                if a_key in held and b_key in held:
                    raise InconsistentOntologyError(
                        f"disjoint properties {disjoint.a} and {disjoint.b} "
                        "hold between the same pair of individuals"
                    )

    def is_consistent(self) -> bool:
        """``True`` when :meth:`check_consistency` does not raise."""
        try:
            self.check_consistency()
        except InconsistentOntologyError:
            return False
        return True
