"""Parser for the OWL 2 functional-style syntax subset used by OPTIQUE.

Supports the constructs that fall inside the OWL 2 QL profile::

    Prefix(sie:=<http://siemens.com/ontology#>)
    Ontology(<http://siemens.com/ontology>
      Declaration(Class(sie:Turbine))
      SubClassOf(sie:GasTurbine sie:Turbine)
      SubClassOf(sie:Turbine ObjectSomeValuesFrom(sie:hasPart sie:Assembly))
      ObjectPropertyDomain(sie:inAssembly sie:Sensor)
      ObjectPropertyRange(sie:inAssembly sie:Assembly)
      InverseObjectProperties(sie:hasPart sie:partOf)
      SubObjectPropertyOf(sie:hasMainSensor sie:hasSensor)
      DisjointClasses(sie:Turbine sie:Sensor)
      DataPropertyDomain(sie:hasValue sie:Sensor)
      ClassAssertion(sie:Turbine sie:t001)
      ObjectPropertyAssertion(sie:hasPart sie:t001 sie:a001)
      DataPropertyAssertion(sie:hasValue sie:s001 "42.0"^^xsd:double)
    )

The grammar is an s-expression dialect, parsed by a hand written
tokenizer + recursive descent parser.
"""

from __future__ import annotations

import re
from collections.abc import Iterator

from ..rdf import IRI, Literal, PrefixMap, XSD
from .model import (
    AtomicClass,
    Attribute,
    ClassAssertion,
    ClassExpression,
    DisjointClasses,
    DisjointProperties,
    Existential,
    Ontology,
    PropertyAssertion,
    PropertyExpression,
    Role,
    SubClassOf,
    SubPropertyOf,
    Thing,
)

__all__ = ["parse_ontology", "serialize_ontology", "OntologySyntaxError"]


class OntologySyntaxError(ValueError):
    """Raised when the ontology document cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<dtsep>\^\^)
    | (?P<lparen>\()
    | (?P<rparen>\))
    | (?P<assign>:?=)
    | (?P<full_iri><[^>]*>)
    | (?P<name>[A-Za-z_][\w.-]*:[\w.-]*|[A-Za-z_][\w.-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise OntologySyntaxError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0
        self.prefixes = PrefixMap()

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._index]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        got_kind, value = self._next()
        if got_kind != kind:
            raise OntologySyntaxError(f"expected {kind}, got {got_kind} {value!r}")
        return value

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Ontology:
        while self._peek()[1] == "Prefix":
            self._parse_prefix()
        ontology = self._parse_ontology()
        if self._peek()[0] != "eof":
            raise OntologySyntaxError(f"trailing input: {self._peek()[1]!r}")
        return ontology

    def _parse_prefix(self) -> None:
        self._expect("name")  # 'Prefix'
        self._expect("lparen")
        name = self._expect("name")
        if not name.endswith(":"):
            raise OntologySyntaxError(f"prefix name must end with ':': {name!r}")
        self._expect("assign")
        iri = self._expect("full_iri")
        self._expect("rparen")
        self.prefixes.bind(name[:-1], iri[1:-1])

    def _parse_ontology(self) -> Ontology:
        keyword = self._expect("name")
        if keyword != "Ontology":
            raise OntologySyntaxError(f"expected Ontology(...), got {keyword!r}")
        self._expect("lparen")
        ontology = Ontology()
        if self._peek()[0] == "full_iri":
            ontology.iri = self._next()[1][1:-1]
        while self._peek()[0] != "rparen":
            self._parse_axiom(ontology)
        self._expect("rparen")
        return ontology

    def _parse_axiom(self, ontology: Ontology) -> None:
        keyword = self._expect("name")
        self._expect("lparen")
        if keyword == "Declaration":
            self._parse_declaration(ontology)
        elif keyword == "SubClassOf":
            sub = self._parse_class_expression()
            sup = self._parse_class_expression()
            ontology.add(SubClassOf(sub, sup))
        elif keyword == "EquivalentClasses":
            a = self._parse_class_expression()
            b = self._parse_class_expression()
            ontology.add(SubClassOf(a, b))
            ontology.add(SubClassOf(b, a))
        elif keyword == "SubObjectPropertyOf":
            sub = self._parse_object_property()
            sup = self._parse_object_property()
            ontology.add(SubPropertyOf(sub, sup))
        elif keyword == "SubDataPropertyOf":
            sub = Attribute(self._parse_iri())
            sup = Attribute(self._parse_iri())
            ontology.add(SubPropertyOf(sub, sup))
        elif keyword == "InverseObjectProperties":
            p = self._parse_object_property()
            q = self._parse_object_property()
            ontology.add(SubPropertyOf(p, q.inverted()))
            ontology.add(SubPropertyOf(q.inverted(), p))
        elif keyword == "SymmetricObjectProperty":
            p = self._parse_object_property()
            ontology.add(SubPropertyOf(p, p.inverted()))
        elif keyword == "ObjectPropertyDomain":
            p = self._parse_object_property()
            c = self._parse_class_expression()
            ontology.add(SubClassOf(Existential(p), c))
        elif keyword == "ObjectPropertyRange":
            p = self._parse_object_property()
            c = self._parse_class_expression()
            ontology.add(SubClassOf(Existential(p.inverted()), c))
        elif keyword == "DataPropertyDomain":
            u = Attribute(self._parse_iri())
            c = self._parse_class_expression()
            ontology.add(SubClassOf(Existential(u), c))
        elif keyword == "DisjointClasses":
            a = self._parse_class_expression()
            b = self._parse_class_expression()
            ontology.add(DisjointClasses(a, b))
        elif keyword == "DisjointObjectProperties":
            a = self._parse_object_property()
            b = self._parse_object_property()
            ontology.add(DisjointProperties(a, b))
        elif keyword == "ClassAssertion":
            cls = self._parse_class_expression()
            individual = self._parse_iri()
            if not isinstance(cls, AtomicClass):
                raise OntologySyntaxError("ClassAssertion requires a named class")
            ontology.add(ClassAssertion(cls, individual))
        elif keyword == "ObjectPropertyAssertion":
            p = self._parse_object_property()
            subject = self._parse_iri()
            value = self._parse_iri()
            ontology.add(PropertyAssertion(p, subject, value))
        elif keyword == "DataPropertyAssertion":
            u = Attribute(self._parse_iri())
            subject = self._parse_iri()
            value = self._parse_literal()
            ontology.add(PropertyAssertion(u, subject, value))
        else:
            raise OntologySyntaxError(f"unsupported axiom {keyword!r}")
        self._expect("rparen")

    def _parse_declaration(self, ontology: Ontology) -> None:
        kind = self._expect("name")
        self._expect("lparen")
        iri = self._parse_iri()
        self._expect("rparen")
        if kind == "Class":
            ontology.declare_class(iri)
        elif kind == "ObjectProperty":
            ontology.declare_object_property(iri)
        elif kind == "DataProperty":
            ontology.declare_data_property(iri)
        elif kind == "NamedIndividual":
            pass  # individuals need no bookkeeping
        else:
            raise OntologySyntaxError(f"unsupported declaration {kind!r}")

    def _parse_class_expression(self) -> ClassExpression:
        kind, value = self._peek()
        if kind == "name" and value == "ObjectSomeValuesFrom":
            self._next()
            self._expect("lparen")
            prop = self._parse_object_property()
            filler = self._parse_class_expression()
            self._expect("rparen")
            if isinstance(filler, Thing):
                return Existential(prop)
            if not isinstance(filler, AtomicClass):
                raise OntologySyntaxError(
                    "OWL 2 QL allows only named fillers in SomeValuesFrom"
                )
            return Existential(prop, filler)
        if kind == "name" and value == "DataSomeValuesFrom":
            self._next()
            self._expect("lparen")
            attr = Attribute(self._parse_iri())
            self._expect("rparen")
            return Existential(attr)
        iri = self._parse_iri()
        if iri.value == "http://www.w3.org/2002/07/owl#Thing":
            return Thing()
        return AtomicClass(iri)

    def _parse_object_property(self) -> Role:
        kind, value = self._peek()
        if kind == "name" and value == "ObjectInverseOf":
            self._next()
            self._expect("lparen")
            role = Role(self._parse_iri(), inverse=True)
            self._expect("rparen")
            return role
        return Role(self._parse_iri())

    def _parse_iri(self) -> IRI:
        kind, value = self._next()
        if kind == "full_iri":
            return IRI(value[1:-1])
        if kind == "name" and ":" in value:
            return self.prefixes.expand(value)
        raise OntologySyntaxError(f"expected an IRI, got {value!r}")

    def _parse_literal(self) -> Literal:
        value = self._expect("string")
        lexical = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        if self._peek()[0] == "dtsep":
            self._next()
            datatype = self._parse_iri()
            return Literal(lexical, datatype)
        return Literal(lexical, XSD.string)


def parse_ontology(text: str) -> Ontology:
    """Parse an OWL 2 functional-syntax document into an :class:`Ontology`."""
    return _Parser(text).parse()


def _class_to_functional(expr: ClassExpression) -> str:
    if isinstance(expr, Thing):
        return "<http://www.w3.org/2002/07/owl#Thing>"
    if isinstance(expr, AtomicClass):
        return expr.iri.n3()
    if isinstance(expr, Existential):
        if isinstance(expr.property, Attribute):
            return f"DataSomeValuesFrom({expr.property.iri.n3()})"
        prop = _property_to_functional(expr.property)
        filler = (
            "<http://www.w3.org/2002/07/owl#Thing>"
            if expr.filler is None
            else expr.filler.iri.n3()
        )
        return f"ObjectSomeValuesFrom({prop} {filler})"
    raise TypeError(f"unexpected class expression {expr!r}")


def _property_to_functional(prop: PropertyExpression) -> str:
    if isinstance(prop, Attribute):
        return prop.iri.n3()
    if prop.inverse:
        return f"ObjectInverseOf({prop.iri.n3()})"
    return prop.iri.n3()


def serialize_ontology(ontology: Ontology) -> str:
    """Render an :class:`Ontology` back to functional syntax (round-trips)."""
    lines = [f"Ontology(<{ontology.iri}>"]
    for iri in sorted(ontology.classes, key=lambda i: i.value):
        lines.append(f"  Declaration(Class({iri.n3()}))")
    for iri in sorted(ontology.object_properties, key=lambda i: i.value):
        lines.append(f"  Declaration(ObjectProperty({iri.n3()}))")
    for iri in sorted(ontology.data_properties, key=lambda i: i.value):
        lines.append(f"  Declaration(DataProperty({iri.n3()}))")
    for axiom in ontology.axioms:
        if isinstance(axiom, SubClassOf):
            lines.append(
                "  SubClassOf("
                f"{_class_to_functional(axiom.sub)} {_class_to_functional(axiom.sup)})"
            )
        elif isinstance(axiom, SubPropertyOf):
            if isinstance(axiom.sub, Attribute):
                lines.append(
                    f"  SubDataPropertyOf({axiom.sub.iri.n3()} {axiom.sup.iri.n3()})"
                )
            else:
                lines.append(
                    "  SubObjectPropertyOf("
                    f"{_property_to_functional(axiom.sub)} "
                    f"{_property_to_functional(axiom.sup)})"
                )
        elif isinstance(axiom, DisjointClasses):
            lines.append(
                "  DisjointClasses("
                f"{_class_to_functional(axiom.a)} {_class_to_functional(axiom.b)})"
            )
        elif isinstance(axiom, DisjointProperties):
            lines.append(
                "  DisjointObjectProperties("
                f"{_property_to_functional(axiom.a)} "
                f"{_property_to_functional(axiom.b)})"
            )
        elif isinstance(axiom, ClassAssertion):
            lines.append(
                f"  ClassAssertion({axiom.cls.iri.n3()} {axiom.individual.n3()})"
            )
        elif isinstance(axiom, PropertyAssertion):
            if isinstance(axiom.property, Attribute):
                lines.append(
                    "  DataPropertyAssertion("
                    f"{axiom.property.iri.n3()} {axiom.subject.n3()} "
                    f"{axiom.value.n3()})"
                )
            else:
                lines.append(
                    "  ObjectPropertyAssertion("
                    f"{_property_to_functional(axiom.property)} "
                    f"{axiom.subject.n3()} {axiom.value.n3()})"
                )
    lines.append(")")
    return "\n".join(lines)
