"""OWL 2 QL (DL-Lite_R) ontology model.

OPTIQUE's enrichment stage rewrites STARQL queries against an OWL 2 QL
TBox.  This module defines the expression and axiom vocabulary of that
profile: atomic classes, (inverse) object properties, data properties,
existential restrictions, and positive/negative inclusion axioms.

Qualified existentials on the right-hand side (``A SubClassOf some P. B``)
are part of OWL 2 QL; :func:`normalize` encodes them with fresh sub-roles so
the rewriting engine only ever sees the classic DL-Lite_R axiom shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator
from typing import Union

from ..rdf import IRI, Term

__all__ = [
    "AtomicClass",
    "Existential",
    "Thing",
    "ClassExpression",
    "Role",
    "Attribute",
    "PropertyExpression",
    "SubClassOf",
    "SubPropertyOf",
    "DisjointClasses",
    "DisjointProperties",
    "ClassAssertion",
    "PropertyAssertion",
    "Axiom",
    "Ontology",
    "normalize",
]


# --------------------------------------------------------------------------
# Property expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Role:
    """An object property, possibly inverted (``P`` or ``P^-``)."""

    iri: IRI
    inverse: bool = False

    def inverted(self) -> Role:
        """The inverse role: ``P`` becomes ``P^-`` and vice versa."""
        return Role(self.iri, not self.inverse)

    def __str__(self) -> str:
        return f"{self.iri.local_name}^-" if self.inverse else self.iri.local_name


@dataclass(frozen=True, slots=True)
class Attribute:
    """A data property.  Attributes have no inverse in OWL 2 QL."""

    iri: IRI

    @property
    def inverse(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.iri.local_name


PropertyExpression = Union[Role, Attribute]


# --------------------------------------------------------------------------
# Class expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AtomicClass:
    """A named class such as ``sie:Turbine``."""

    iri: IRI

    def __str__(self) -> str:
        return self.iri.local_name


@dataclass(frozen=True, slots=True)
class Existential:
    """``some property [filler]`` — unqualified when ``filler`` is ``None``.

    ``Existential(Role(P))`` denotes the domain of ``P``;
    ``Existential(Role(P, inverse=True))`` its range.
    """

    property: PropertyExpression
    filler: AtomicClass | None = None

    def __str__(self) -> str:
        if self.filler is None:
            return f"∃{self.property}"
        return f"∃{self.property}.{self.filler}"


@dataclass(frozen=True, slots=True)
class Thing:
    """``owl:Thing`` — the top class."""

    def __str__(self) -> str:
        return "⊤"


ClassExpression = Union[AtomicClass, Existential, Thing]


# --------------------------------------------------------------------------
# Axioms
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SubClassOf:
    """Positive class inclusion ``sub ⊑ sup``."""

    sub: ClassExpression
    sup: ClassExpression

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


@dataclass(frozen=True, slots=True)
class SubPropertyOf:
    """Positive property inclusion ``sub ⊑ sup`` (roles may be inverted)."""

    sub: PropertyExpression
    sup: PropertyExpression

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


@dataclass(frozen=True, slots=True)
class DisjointClasses:
    """Negative inclusion ``a ⊓ b ⊑ ⊥``."""

    a: ClassExpression
    b: ClassExpression


@dataclass(frozen=True, slots=True)
class DisjointProperties:
    """Negative property inclusion."""

    a: PropertyExpression
    b: PropertyExpression


@dataclass(frozen=True, slots=True)
class ClassAssertion:
    """ABox membership assertion ``C(individual)``."""

    cls: AtomicClass
    individual: IRI


@dataclass(frozen=True, slots=True)
class PropertyAssertion:
    """ABox property assertion ``P(subject, value)``."""

    property: PropertyExpression
    subject: IRI
    value: Term


Axiom = Union[
    SubClassOf,
    SubPropertyOf,
    DisjointClasses,
    DisjointProperties,
    ClassAssertion,
    PropertyAssertion,
]


# --------------------------------------------------------------------------
# Ontology container
# --------------------------------------------------------------------------


@dataclass
class Ontology:
    """A TBox (+optional ABox) with declaration bookkeeping.

    The container keeps axioms in insertion order and exposes typed views
    used by the reasoner and the rewriting engine.
    """

    iri: str = "urn:ontology"
    axioms: list[Axiom] = field(default_factory=list)
    classes: set[IRI] = field(default_factory=set)
    object_properties: set[IRI] = field(default_factory=set)
    data_properties: set[IRI] = field(default_factory=set)

    # -- declarations ------------------------------------------------------

    def declare_class(self, iri: IRI) -> AtomicClass:
        """Declare a named class and return its expression."""
        self.classes.add(iri)
        return AtomicClass(iri)

    def declare_object_property(self, iri: IRI) -> Role:
        """Declare an object property and return its (direct) role."""
        self.object_properties.add(iri)
        return Role(iri)

    def declare_data_property(self, iri: IRI) -> Attribute:
        """Declare a data property and return its attribute expression."""
        self.data_properties.add(iri)
        return Attribute(iri)

    # -- axiom entry points -------------------------------------------------

    def add(self, axiom: Axiom) -> Ontology:
        """Append an axiom, auto-declaring the vocabulary it mentions."""
        self.axioms.append(axiom)
        for expr in _mentioned_expressions(axiom):
            if isinstance(expr, AtomicClass):
                self.classes.add(expr.iri)
            elif isinstance(expr, Role):
                self.object_properties.add(expr.iri)
            elif isinstance(expr, Attribute):
                self.data_properties.add(expr.iri)
        return self

    def extend(self, axioms: Iterable[Axiom]) -> Ontology:
        """Append all ``axioms``."""
        for axiom in axioms:
            self.add(axiom)
        return self

    # -- typed axiom views ---------------------------------------------------

    @property
    def class_inclusions(self) -> list[SubClassOf]:
        return [a for a in self.axioms if isinstance(a, SubClassOf)]

    @property
    def property_inclusions(self) -> list[SubPropertyOf]:
        return [a for a in self.axioms if isinstance(a, SubPropertyOf)]

    @property
    def disjoint_classes(self) -> list[DisjointClasses]:
        return [a for a in self.axioms if isinstance(a, DisjointClasses)]

    @property
    def disjoint_properties(self) -> list[DisjointProperties]:
        return [a for a in self.axioms if isinstance(a, DisjointProperties)]

    @property
    def class_assertions(self) -> list[ClassAssertion]:
        return [a for a in self.axioms if isinstance(a, ClassAssertion)]

    @property
    def property_assertions(self) -> list[PropertyAssertion]:
        return [a for a in self.axioms if isinstance(a, PropertyAssertion)]

    def tbox(self) -> list[Axiom]:
        """Terminological axioms only (no assertions)."""
        return [
            a
            for a in self.axioms
            if not isinstance(a, (ClassAssertion, PropertyAssertion))
        ]

    def abox(self) -> list[Axiom]:
        """Assertional axioms only."""
        return [
            a for a in self.axioms if isinstance(a, (ClassAssertion, PropertyAssertion))
        ]

    def term_count(self) -> int:
        """Number of declared vocabulary terms."""
        return (
            len(self.classes) + len(self.object_properties) + len(self.data_properties)
        )

    def __len__(self) -> int:
        return len(self.axioms)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"Ontology({self.iri!r}, {len(self.axioms)} axioms, "
            f"{self.term_count()} terms)"
        )


def _mentioned_expressions(axiom: Axiom) -> Iterator[object]:
    """Yield every class/property expression mentioned in ``axiom``."""
    if isinstance(axiom, SubClassOf):
        yield from _class_parts(axiom.sub)
        yield from _class_parts(axiom.sup)
    elif isinstance(axiom, SubPropertyOf):
        yield axiom.sub
        yield axiom.sup
    elif isinstance(axiom, DisjointClasses):
        yield from _class_parts(axiom.a)
        yield from _class_parts(axiom.b)
    elif isinstance(axiom, DisjointProperties):
        yield axiom.a
        yield axiom.b
    elif isinstance(axiom, ClassAssertion):
        yield axiom.cls
    elif isinstance(axiom, PropertyAssertion):
        yield axiom.property


def _class_parts(expr: ClassExpression) -> Iterator[object]:
    if isinstance(expr, AtomicClass):
        yield expr
    elif isinstance(expr, Existential):
        yield expr.property
        if expr.filler is not None:
            yield expr.filler


# --------------------------------------------------------------------------
# Normalisation: eliminate qualified existentials on the RHS
# --------------------------------------------------------------------------


def normalize(ontology: Ontology) -> Ontology:
    """Rewrite ``B ⊑ ∃P.C`` axioms into classic DL-Lite_R shape.

    Each qualified right-hand-side existential is encoded with a fresh
    auxiliary role ``P_aux``::

        B ⊑ ∃P.C   ~>   P_aux ⊑ P,  ∃P_aux⁻ ⊑ C,  B ⊑ ∃P_aux

    The encoding is answer-preserving for query rewriting (Calvanese et
    al. 2007).  Qualified existentials on the *left* side are simply split
    (``∃P.C ⊑ D`` keeps its meaning only partially in DL-Lite_R; BootOX never
    emits that shape and the parser rejects it).
    """
    result = Ontology(iri=ontology.iri)
    result.classes |= ontology.classes
    result.object_properties |= ontology.object_properties
    result.data_properties |= ontology.data_properties
    fresh = 0
    for axiom in ontology.axioms:
        if (
            isinstance(axiom, SubClassOf)
            and isinstance(axiom.sup, Existential)
            and axiom.sup.filler is not None
        ):
            base = axiom.sup.property
            if not isinstance(base, Role):
                raise ValueError("qualified existential over a data property")
            fresh += 1
            aux = Role(IRI(f"{base.iri.value}__aux{fresh}"), base.inverse)
            result.add(SubPropertyOf(aux, base))
            result.add(SubClassOf(Existential(aux.inverted()), axiom.sup.filler))
            result.add(SubClassOf(axiom.sub, Existential(aux)))
        else:
            result.add(axiom)
    return result
