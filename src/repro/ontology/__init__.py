"""OWL 2 QL ontologies: model, parser, reasoner and profile checker."""

from .model import (
    AtomicClass,
    Attribute,
    Axiom,
    ClassAssertion,
    ClassExpression,
    DisjointClasses,
    DisjointProperties,
    Existential,
    Ontology,
    PropertyAssertion,
    PropertyExpression,
    Role,
    SubClassOf,
    SubPropertyOf,
    Thing,
    normalize,
)
from .parser import OntologySyntaxError, parse_ontology, serialize_ontology
from .profile import ProfileReport, ProfileViolation, check_owl2ql
from .reasoner import InconsistentOntologyError, Reasoner

__all__ = [
    "AtomicClass",
    "Attribute",
    "Axiom",
    "ClassAssertion",
    "ClassExpression",
    "DisjointClasses",
    "DisjointProperties",
    "Existential",
    "Ontology",
    "PropertyAssertion",
    "PropertyExpression",
    "Role",
    "SubClassOf",
    "SubPropertyOf",
    "Thing",
    "normalize",
    "OntologySyntaxError",
    "parse_ontology",
    "serialize_ontology",
    "ProfileReport",
    "ProfileViolation",
    "check_owl2ql",
    "InconsistentOntologyError",
    "Reasoner",
]
