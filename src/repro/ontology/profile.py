"""OWL 2 QL profile checking.

STARQL's polynomial-time enrichment guarantee only holds when the TBox is
inside OWL 2 QL.  OPTIQUE therefore validates every ontology (bootstrapped
or imported) against the profile before deployment; this module implements
that check for our axiom model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import (
    AtomicClass,
    Attribute,
    Axiom,
    ClassAssertion,
    ClassExpression,
    DisjointClasses,
    DisjointProperties,
    Existential,
    Ontology,
    PropertyAssertion,
    SubClassOf,
    SubPropertyOf,
    Thing,
)

__all__ = ["ProfileReport", "ProfileViolation", "check_owl2ql"]


@dataclass(frozen=True, slots=True)
class ProfileViolation:
    """A single axiom outside the OWL 2 QL profile."""

    axiom: Axiom
    reason: str

    def __str__(self) -> str:
        return f"{self.reason}: {self.axiom}"


@dataclass
class ProfileReport:
    """Outcome of an OWL 2 QL profile check."""

    violations: list[ProfileViolation] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.conformant


def _is_subclass_expression(expr: ClassExpression) -> bool:
    """LHS grammar: named class | unqualified existential."""
    if isinstance(expr, (AtomicClass, Thing)):
        return True
    return isinstance(expr, Existential) and expr.filler is None


def _is_superclass_expression(expr: ClassExpression) -> bool:
    """RHS grammar: named class | existential with named filler."""
    if isinstance(expr, (AtomicClass, Thing)):
        return True
    if isinstance(expr, Existential):
        return expr.filler is None or isinstance(expr.filler, AtomicClass)
    return False


def check_owl2ql(ontology: Ontology) -> ProfileReport:
    """Validate every axiom of ``ontology`` against OWL 2 QL.

    The check runs on the *raw* (un-normalised) ontology, so users see
    violations in terms of the axioms they wrote.
    """
    report = ProfileReport()
    for axiom in ontology.axioms:
        if isinstance(axiom, SubClassOf):
            if not _is_subclass_expression(axiom.sub):
                report.violations.append(
                    ProfileViolation(
                        axiom, "subclass position allows only basic concepts"
                    )
                )
            if not _is_superclass_expression(axiom.sup):
                report.violations.append(
                    ProfileViolation(
                        axiom,
                        "superclass position allows only named classes and "
                        "existentials with named fillers",
                    )
                )
        elif isinstance(axiom, SubPropertyOf):
            sub_is_attr = isinstance(axiom.sub, Attribute)
            sup_is_attr = isinstance(axiom.sup, Attribute)
            if sub_is_attr != sup_is_attr:
                report.violations.append(
                    ProfileViolation(
                        axiom, "cannot mix object and data properties"
                    )
                )
        elif isinstance(axiom, DisjointClasses):
            if not _is_subclass_expression(axiom.a) or not _is_subclass_expression(
                axiom.b
            ):
                report.violations.append(
                    ProfileViolation(
                        axiom, "disjointness allows only basic concepts"
                    )
                )
        elif isinstance(
            axiom, (DisjointProperties, ClassAssertion, PropertyAssertion)
        ):
            continue  # always inside the profile
        else:  # pragma: no cover - future axiom kinds
            report.violations.append(
                ProfileViolation(axiom, "axiom kind outside OWL 2 QL")
            )
    return report
