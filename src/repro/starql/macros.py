"""Aggregate macros and the HAVING-language evaluator.

STARQL's ``CREATE AGGREGATE`` declares reusable window conditions (the
paper's ``MONOTONIC:HAVING``).  This module provides:

* :class:`MacroRegistry` — macro storage + call expansion (``$var`` /
  ``$attr`` parameter substitution);
* :class:`HavingEvaluator` — evaluation of HAVING expressions over a
  window's state sequence, parameterised by a *state accessor* so the
  same semantics runs in two worlds:

  - :class:`RelationalStates` — tuples grouped by timestamp with
    attribute-to-column roles (the compiled SQL(+)/UDF fast path);
  - :class:`GraphStates` — per-state RDF graphs with optional
    ontology-aware atom expansion (the reference semantics).

* :func:`compile_macro` — close a HAVING body over a role map, yielding a
  sequence UDF the EXASTREAM engine can run per group (this *is* the
  STARQL2SQL(+) treatment of macros: "we use standard SQL to combine
  data and process them with UDFs").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import Any

from ..queries import Atom
from ..rdf import IRI, Graph, Literal, RDF, Term, Variable
from .ast import (
    AggregateComparison,
    AggregateMacro,
    BoolOp,
    Comparison,
    Exists,
    Forall,
    GraphPattern,
    HavingExpr,
    Implies,
    MacroCall,
)

__all__ = [
    "MacroRegistry",
    "MacroError",
    "substitute_having",
    "collect_attributes",
    "HavingEvaluator",
    "RelationalStates",
    "GraphStates",
    "compile_macro",
]

_PARAM_PREFIX = "urn:starql:param:"


class MacroError(ValueError):
    """Raised on macro registration/expansion problems."""


class MacroRegistry:
    """Named aggregate macros of one deployment."""

    def __init__(self) -> None:
        self._macros: dict[str, AggregateMacro] = {}

    def register(self, macro: AggregateMacro) -> None:
        self._macros[macro.name.upper()] = macro

    def get(self, name: str) -> AggregateMacro | None:
        return self._macros.get(name.upper())

    def names(self) -> set[str]:
        return set(self._macros)

    def expand(self, call: MacroCall) -> HavingExpr:
        """Inline a macro call, substituting its parameters by the args."""
        macro = self.get(call.name)
        if macro is None:
            raise MacroError(f"unknown aggregate macro {call.name!r}")
        if len(call.args) != len(macro.parameters):
            raise MacroError(
                f"{macro.name} expects {len(macro.parameters)} arguments, "
                f"got {len(call.args)}"
            )
        mapping: dict[str, Term] = {
            param: arg for param, arg in zip(macro.parameters, call.args)
        }
        return substitute_having(macro.body, mapping)


def _substitute_term(term: Term, mapping: Mapping[str, Term]) -> Term:
    if isinstance(term, Variable) and term.name.startswith("$"):
        replacement = mapping.get(term.name)
        if replacement is None:
            raise MacroError(f"unbound macro parameter {term.name}")
        return replacement
    return term


def _substitute_predicate(predicate: IRI, mapping: Mapping[str, Term]) -> IRI:
    if predicate.value.startswith(_PARAM_PREFIX):
        name = "$" + predicate.value[len(_PARAM_PREFIX):]
        replacement = mapping.get(name)
        if not isinstance(replacement, IRI):
            raise MacroError(f"parameter {name} must be bound to an IRI")
        return replacement
    return predicate


def substitute_having(
    expr: HavingExpr, mapping: Mapping[str, Term]
) -> HavingExpr:
    """Replace ``$param`` occurrences (terms and predicates) in a body."""
    if isinstance(expr, GraphPattern):
        atoms = tuple(
            Atom(
                _substitute_predicate(a.predicate, mapping),
                tuple(_substitute_term(t, mapping) for t in a.args),
            )
            for a in expr.atoms
        )
        return GraphPattern(expr.state, atoms)
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            _substitute_term(expr.left, mapping),
            _substitute_term(expr.right, mapping),
        )
    if isinstance(expr, MacroCall):
        return MacroCall(
            expr.name,
            tuple(_substitute_term(t, mapping) for t in expr.args),
        )
    if isinstance(expr, AggregateComparison):
        return expr
    if isinstance(expr, Exists):
        return Exists(expr.variables, substitute_having(expr.body, mapping))
    if isinstance(expr, Forall):
        return Forall(
            expr.index_variables,
            expr.index_constraints,
            expr.value_variables,
            substitute_having(expr.body, mapping),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(
            expr.op,
            tuple(substitute_having(o, mapping) for o in expr.operands),
        )
    if isinstance(expr, Implies):
        return Implies(
            substitute_having(expr.premise, mapping),
            substitute_having(expr.conclusion, mapping),
        )
    raise TypeError(f"unexpected having expression {expr!r}")


def collect_attributes(expr: HavingExpr) -> set[IRI]:
    """All attribute IRIs mentioned in GRAPH patterns of a HAVING body."""
    attributes: set[IRI] = set()
    if isinstance(expr, GraphPattern):
        for atom in expr.atoms:
            if atom.is_property_atom:
                attributes.add(atom.predicate)
    elif isinstance(expr, Exists):
        attributes |= collect_attributes(expr.body)
    elif isinstance(expr, Forall):
        attributes |= collect_attributes(expr.body)
    elif isinstance(expr, BoolOp):
        for operand in expr.operands:
            attributes |= collect_attributes(operand)
    elif isinstance(expr, Implies):
        attributes |= collect_attributes(expr.premise)
        attributes |= collect_attributes(expr.conclusion)
    return attributes


# ---------------------------------------------------------------------------
# State accessors
# ---------------------------------------------------------------------------


class RelationalStates:
    """Window states as tuples grouped by timestamp, with attribute roles.

    ``roles`` maps attribute IRI -> tuple index of its value column; rows
    with a ``None`` value for a column simply don't carry that attribute
    (sparse encoding of heterogeneous stream tuples).
    """

    def __init__(
        self,
        rows: list[tuple],
        ts_index: int,
        roles: Mapping[IRI, int],
        subject: Term,
    ) -> None:
        by_ts: dict[Any, list[tuple]] = {}
        for row in rows:
            by_ts.setdefault(row[ts_index], []).append(row)
        self._states = [by_ts[k] for k in sorted(by_ts)]
        self._roles = dict(roles)
        self._subject = subject

    def num_states(self) -> int:
        return len(self._states)

    def match(
        self, state: int, atom: Atom, env: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        if not atom.is_property_atom:
            return  # class atoms carry no stream data in this encoding
        column = self._roles.get(atom.predicate)
        if column is None:
            return
        subject_term, object_term = atom.args
        # subjects inside one group all refer to the grouped entity
        if isinstance(subject_term, Variable):
            bound = env.get(subject_term, self._subject)
            if bound != self._subject:
                return
        elif subject_term != self._subject:
            return
        flag_atom = _is_flag(atom)
        for row in self._states[state]:
            value = row[column]
            if value is None:
                continue
            if flag_atom and not value:
                continue  # a flag attribute holds only when truthy
            extended = dict(env)
            if isinstance(subject_term, Variable):
                extended[subject_term] = self._subject
            if isinstance(object_term, Variable):
                existing = extended.get(object_term)
                if existing is not None and existing != value:
                    continue
                extended[object_term] = value
            elif isinstance(object_term, Literal):
                if object_term.to_python() != value:
                    continue
            yield extended


def _is_flag(atom: Atom) -> bool:
    object_term = atom.args[1]
    return isinstance(object_term, Variable) and object_term.name.startswith(
        "anyobj_"
    )


class GraphStates:
    """Window states as RDF graphs (the reference semantics).

    ``expander`` optionally maps a single atom to alternative atoms implied
    by the ontology (one-atom rewriting), so state patterns benefit from
    enrichment exactly like WHERE patterns do.
    """

    def __init__(
        self,
        graphs: list[Graph],
        static_graph: Graph | None = None,
        expander: Callable[[Atom], Iterable[Atom]] | None = None,
    ) -> None:
        self._graphs = graphs
        self._static = static_graph or Graph()
        self._expander = expander or (lambda atom: [atom])

    def num_states(self) -> int:
        return len(self._graphs)

    def match(
        self, state: int, atom: Atom, env: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        from ..queries import match_atom

        graph = self._graphs[state] | self._static
        seen: set[tuple] = set()
        for candidate in self._expander(atom):
            for extended in match_atom(graph, candidate, _rdf_env(env)):
                native = {
                    var: (value.to_python() if isinstance(value, Literal) else value)
                    for var, value in extended.items()
                }
                merged = dict(env)
                merged.update(native)
                key = tuple(sorted((v.name, repr(x)) for v, x in merged.items()))
                if key not in seen:
                    seen.add(key)
                    yield merged


def _rdf_env(env: dict[Variable, Any]) -> dict[Variable, Term]:
    from ..rdf import term_from_python

    out: dict[Variable, Term] = {}
    for var, value in env.items():
        if isinstance(value, int) and not isinstance(value, bool):
            # state indexes never appear inside graph patterns
            continue
        try:
            out[var] = term_from_python(value)
        except TypeError:
            continue
    return out


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass
class HavingEvaluator:
    """Evaluate a HAVING expression over one window's state sequence.

    The evaluation model is SPARQL-like: expressions produce streams of
    extended environments; truth means "at least one solution".
    """

    states: RelationalStates | GraphStates
    macros: MacroRegistry | None = None

    def is_satisfied(
        self, expr: HavingExpr, env: dict[Variable, Any] | None = None
    ) -> bool:
        return any(True for _ in self.solutions(expr, env or {}))

    def solutions(
        self, expr: HavingExpr, env: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        if isinstance(expr, GraphPattern):
            yield from self._graph_pattern(expr, env)
            return
        if isinstance(expr, Comparison):
            if self._compare(expr, env):
                yield env
            return
        if isinstance(expr, MacroCall):
            if self.macros is None:
                raise MacroError("no macro registry available")
            yield from self.solutions(self.macros.expand(expr), env)
            return
        if isinstance(expr, BoolOp):
            yield from self._boolop(expr, env)
            return
        if isinstance(expr, Exists):
            for assignment in self._index_assignments(expr.variables, (), env):
                if self.is_satisfied(expr.body, assignment):
                    yield env
                    return
            return
        if isinstance(expr, Forall):
            if self._forall(expr, env):
                yield env
            return
        if isinstance(expr, Implies):
            if self._implies(expr, env):
                yield env
            return
        raise TypeError(f"cannot evaluate {expr!r}")

    # -- pieces ------------------------------------------------------------

    def _graph_pattern(
        self, pattern: GraphPattern, env: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        state = env.get(pattern.state)
        if state is None:
            raise MacroError(f"unbound state variable ?{pattern.state.name}")
        if not (0 <= state < self.states.num_states()):
            return
        envs = [env]
        for atom in pattern.atoms:
            next_envs: list[dict[Variable, Any]] = []
            for current in envs:
                next_envs.extend(self.states.match(state, atom, current))
            envs = next_envs
            if not envs:
                return
        yield from envs

    def _compare(self, expr: Comparison, env: dict[Variable, Any]) -> bool:
        left = self._value(expr.left, env)
        right = self._value(expr.right, env)
        if left is None or right is None:
            return False
        ops: dict[str, Callable[[Any, Any], bool]] = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        try:
            return ops[expr.op](left, right)
        except TypeError:
            return False

    @staticmethod
    def _value(term: Term, env: dict[Variable, Any]) -> Any:
        if isinstance(term, Variable):
            return env.get(term)
        if isinstance(term, Literal):
            return term.to_python()
        return term

    def _boolop(
        self, expr: BoolOp, env: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        if expr.op == "NOT":
            if not self.is_satisfied(expr.operands[0], env):
                yield env
            return
        if expr.op == "OR":
            seen: set[int] = set()
            for operand in expr.operands:
                for solution in self.solutions(operand, env):
                    yield solution
            return
        # AND: thread bindings through the operands
        envs = [env]
        for operand in expr.operands:
            next_envs: list[dict[Variable, Any]] = []
            for current in envs:
                next_envs.extend(self.solutions(operand, current))
            envs = next_envs
            if not envs:
                return
        yield from envs

    def _index_assignments(
        self,
        variables: tuple[Variable, ...],
        constraints: tuple[Comparison, ...],
        env: dict[Variable, Any],
    ) -> Iterator[dict[Variable, Any]]:
        n = self.states.num_states()
        for combo in product(range(n), repeat=len(variables)):
            assignment = dict(env)
            assignment.update(dict(zip(variables, combo)))
            if all(self._compare(c, assignment) for c in constraints):
                yield assignment

    def _forall(self, expr: Forall, env: dict[Variable, Any]) -> bool:
        for assignment in self._index_assignments(
            expr.index_variables, expr.index_constraints, env
        ):
            if isinstance(expr.body, Implies):
                if not self._implies(expr.body, assignment):
                    return False
            else:
                if not self.is_satisfied(expr.body, assignment):
                    return False
        return True

    def _implies(self, expr: Implies, env: dict[Variable, Any]) -> bool:
        for premise_env in self.solutions(expr.premise, env):
            if not self.is_satisfied(expr.conclusion, premise_env):
                return False
        return True


# ---------------------------------------------------------------------------
# Macro -> sequence UDF compilation
# ---------------------------------------------------------------------------


def compile_macro(
    body: HavingExpr,
    subject: Term,
    attribute_roles: Mapping[IRI, str],
) -> Callable[[list[tuple], dict[str, int]], bool]:
    """Close a HAVING body into an EXASTREAM sequence UDF.

    ``attribute_roles`` names the column role carrying each attribute
    (role names appear in the UDF's ``arg_names`` next to ``ts``).  The
    returned function matches :data:`repro.exastream.udf.SequenceFn`.
    """
    role_names = dict(attribute_roles)

    def udf(tuples: list[tuple], columns: dict[str, int]) -> bool:
        roles = {
            attribute: columns[role]
            for attribute, role in role_names.items()
        }
        states = RelationalStates(tuples, columns["ts"], roles, subject)
        evaluator = HavingEvaluator(states)
        return evaluator.is_satisfied(body)

    return udf
