"""Reference (formal) semantics for STARQL.

This module evaluates a STARQL query *directly* over RDF: stream tuples
are converted to timestamped ABox assertions through the stream mappings,
windows follow CQL snapshot semantics, window contents become StdSeq
state graphs, WHERE bindings are certain answers over the static ABox
(+TBox), and HAVING conditions are checked by the
:class:`~repro.starql.macros.HavingEvaluator` over the state graphs with
ontology-aware atom expansion.

It is deliberately simple and slow — the point is to be an executable
specification against which the compiled SQL(+)/EXASTREAM pipeline is
cross-checked (the tests assert both paths produce identical alerts).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from ..exastream.engine import StreamEngine
from ..exastream.operators import Relation, compile_expr
from ..mappings import (
    ColumnSpec,
    MappingAssertion,
    MappingCollection,
    TemplateSpec,
)
from ..ontology import Ontology
from ..queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    evaluate_ucq,
)
from ..rdf import IRI, Graph, Literal, RDF, Term, Variable
from ..rewriting import PerfectRef
from ..sql import BaseTable, SelectQuery
from ..streams import WindowSpec, time_sliding_window
from .ast import STARQLQuery
from .macros import GraphStates, HavingEvaluator, MacroRegistry

__all__ = ["ReferenceResult", "ReferenceEvaluator", "static_abox_graph"]


def static_abox_graph(ontology: Ontology) -> Graph:
    """Materialise an ontology's ABox assertions as an RDF graph."""
    graph = Graph()
    for assertion in ontology.class_assertions:
        graph.add((assertion.individual, RDF.type, assertion.cls.iri))
    for assertion in ontology.property_assertions:
        prop = assertion.property
        subject, value = assertion.subject, assertion.value
        if getattr(prop, "inverse", False):
            if not isinstance(value, IRI):
                continue
            subject, value = value, subject
        graph.add((subject, prop.iri, value))
    return graph


@dataclass
class ReferenceResult:
    """Alerts produced for one window."""

    window_id: int
    window_end: float
    triples: set[tuple]


class ReferenceEvaluator:
    """Evaluate STARQL queries via the formal semantics."""

    def __init__(
        self,
        ontology: Ontology,
        mappings: MappingCollection,
        engine: StreamEngine,
        static_graph: Graph,
        macros: MacroRegistry | None = None,
    ) -> None:
        self.ontology = ontology
        self.mappings = mappings
        self.engine = engine
        self.static_graph = static_graph
        self.macros = macros or MacroRegistry()
        self._rewriter = PerfectRef(ontology)
        self._expansion_cache: dict[IRI, list[Atom]] = {}

    # -- main entry -----------------------------------------------------------

    def evaluate(
        self, query: STARQLQuery, max_windows: int | None = None
    ) -> list[ReferenceResult]:
        """All window results of ``query`` over the registered streams."""
        answer_vars = query.where_variables()
        cq = ConjunctiveQuery(answer_vars, query.where_atoms, query.where_filters)
        enriched = self._rewriter.rewrite(cq)
        bindings = [
            dict(zip(answer_vars, row))
            for row in sorted(
                evaluate_ucq(self.static_graph, enriched), key=str
            )
        ]

        stream_name = query.windows[0].stream
        if stream_name not in self.engine.stream_names:
            raise ValueError(
                f"unknown stream {stream_name!r} in FROM STREAM "
                f"(registered: {sorted(self.engine.stream_names)})"
            )
        spec = WindowSpec(
            query.windows[0].range_seconds, query.windows[0].slide_seconds
        )
        start = query.pulse.start_seconds if query.pulse else None

        results: list[ReferenceResult] = []
        for window_id, (end, state_graphs) in enumerate(
            self._window_state_graphs(stream_name, spec, start)
        ):
            if max_windows is not None and window_id >= max_windows:
                break
            triples: set[tuple] = set()
            states = GraphStates(
                state_graphs, self.static_graph, expander=self._expand_atom
            )
            evaluator = HavingEvaluator(states, self.macros)
            for binding in bindings:
                env = {
                    var: (value.to_python() if isinstance(value, Literal) else value)
                    for var, value in binding.items()
                }
                if query.having is None or evaluator.is_satisfied(
                    query.having, env
                ):
                    triples |= set(self._construct(query, binding))
            results.append(ReferenceResult(window_id, end, triples))
        return results

    # -- stream -> RDF ----------------------------------------------------------

    def _stream_mappings(self, stream_name: str) -> list[MappingAssertion]:
        out = []
        for assertion in self.mappings:
            if not assertion.is_stream:
                continue
            source = assertion.source
            if (
                isinstance(source, SelectQuery)
                and len(source.from_) == 1
                and isinstance(source.from_[0], BaseTable)
                and source.from_[0].name == stream_name
            ):
                out.append(assertion)
        return out

    def _window_state_graphs(
        self,
        stream_name: str,
        spec: WindowSpec,
        start: float | None,
    ) -> Iterator[tuple[float, list[Graph]]]:
        source = self.engine.stream(stream_name)
        schema = source.stream.schema
        time_index = schema.time_index
        assertions = self._stream_mappings(stream_name)
        if not assertions:
            # An unmapped stream would silently yield empty state graphs
            # for every window — surface the configuration error instead.
            raise ValueError(
                f"stream {stream_name!r} has no stream mappings: no RDF "
                "state graphs can be built from its tuples"
            )
        base_relation = Relation(list(schema.column_names), [])
        compiled = []
        for assertion in assertions:
            predicates = [
                compile_expr(p, base_relation)
                for p in assertion.source.where
            ]
            compiled.append((assertion, predicates))

        for batch in time_sliding_window(iter(source), spec, time_index, start):
            by_ts: dict[float, list[tuple]] = {}
            for item in batch.tuples:
                by_ts.setdefault(item[time_index], []).append(item)
            graphs: list[Graph] = []
            for ts in sorted(by_ts):
                graph = Graph()
                for item in by_ts[ts]:
                    for assertion, predicates in compiled:
                        if not all(p(item) for p in predicates):
                            continue
                        graph.update(self._tuple_triples(assertion, schema, item))
                graphs.append(graph)
            yield batch.end, graphs

    @staticmethod
    def _tuple_triples(assertion: MappingAssertion, schema, item) -> list[tuple]:
        def column_value(name: str):
            return item[schema.index_of(name)]

        subject_spec = assertion.subject
        if not isinstance(subject_spec, TemplateSpec):
            return []
        values = {
            c: column_value(c) for c in subject_spec.template.columns
        }
        if any(v is None for v in values.values()):
            return []
        subject = IRI(subject_spec.template.render(values))
        if assertion.object is None:
            return [(subject, RDF.type, assertion.predicate)]
        obj = assertion.object
        if isinstance(obj, ColumnSpec):
            value = column_value(obj.column)
            if value is None:
                return []
            return [
                (
                    subject,
                    assertion.predicate,
                    Literal(str(value), obj.datatype),
                )
            ]
        return []

    # -- ontology-aware atom expansion ---------------------------------------------

    def _expand_atom(self, atom: Atom) -> list[Atom]:
        """Single-atom enrichment for state-graph patterns."""
        cached = self._expansion_cache.get(atom.predicate)
        if cached is None:
            variables = tuple(
                Variable(f"ex{i}") for i in range(len(atom.args))
            )
            query = ConjunctiveQuery(variables, (Atom(atom.predicate, variables),))
            rewritten = self._rewriter.rewrite(query)
            cached = [
                disjunct.atoms[0]
                for disjunct in rewritten
                if len(disjunct.atoms) == 1
                and disjunct.answer_variables
                == tuple(disjunct.atoms[0].args)[: len(variables)]
            ]
            self._expansion_cache[atom.predicate] = cached
        out = []
        for template in cached:
            mapping = {}
            ok = True
            for template_arg, actual in zip(template.args, atom.args):
                if isinstance(template_arg, Variable):
                    mapping[template_arg] = actual
                elif template_arg != actual:
                    ok = False
                    break
            if ok:
                out.append(template.substitute(mapping))
        return out or [atom]

    # -- construct -------------------------------------------------------------------

    @staticmethod
    def _construct(
        query: STARQLQuery, binding: dict[Variable, Term]
    ) -> list[tuple]:
        def resolve(term: Term) -> Term:
            if isinstance(term, Variable):
                return binding[term]
            return term

        triples = []
        for atom in query.construct_atoms:
            if atom.is_class_atom:
                triples.append((resolve(atom.args[0]), RDF.type, atom.predicate))
            else:
                triples.append(
                    (
                        resolve(atom.args[0]),
                        atom.predicate,
                        resolve(atom.args[1]),
                    )
                )
        return triples
