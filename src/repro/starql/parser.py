"""Parser for the STARQL query language.

Hand-written recursive descent over a dedicated tokenizer.  The
``CONSTRUCT``/``WHERE`` basic graph patterns are delegated to the shared
SPARQL BGP parser; window specifications, PULSE clauses, HAVING
conditions and ``CREATE AGGREGATE`` macros are handled here.

The accepted syntax matches the paper's Figure 1 (see
:mod:`repro.starql.ast`).
"""

from __future__ import annotations

import re

from ..queries import Atom, parse_bgp
from ..rdf import IRI, Literal, PrefixMap, Term, Variable, XSD
from .ast import (
    AggregateComparison,
    AggregateMacro,
    BoolOp,
    Comparison,
    Exists,
    Forall,
    GraphPattern,
    HavingExpr,
    Implies,
    MacroCall,
    PulseClause,
    STARQLQuery,
    WindowClause,
)

__all__ = [
    "parse_starql",
    "parse_aggregate_macro",
    "parse_document",
    "parse_duration",
    "STARQLSyntaxError",
    "SQL_AGG_FUNCTIONS",
]


class STARQLSyntaxError(ValueError):
    """Raised when STARQL text cannot be parsed."""


_existential_counter = __import__("itertools").count()


def _fresh_existential() -> Variable:
    """A fresh variable for object-less state atoms (existential object)."""
    return Variable(f"anyobj_{next(_existential_counter)}")


SQL_AGG_FUNCTIONS = {"AVG", "MIN", "MAX", "SUM", "COUNT", "SLOPE", "SPREAD", "PEARSON"}

_KEYWORDS = {
    "CREATE", "STREAM", "AS", "CONSTRUCT", "GRAPH", "NOW", "FROM", "STATIC",
    "DATA", "ONTOLOGY", "USING", "PULSE", "WITH", "START", "FREQUENCY",
    "WHERE", "SEQUENCE", "BY", "HAVING", "AGGREGATE", "EXISTS", "FORALL",
    "IN", "IF", "THEN", "AND", "OR", "NOT", "SEQ", "PREFIX",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<dtsep>\^\^)
    | (?P<arrow>->)
    | (?P<lbracket>\[) | (?P<rbracket>\])
    | (?P<lbrace>\{) | (?P<rbrace>\})
    | (?P<lparen>\() | (?P<rparen>\))
    | (?P<comma>,) | (?P<semicolon>;)
    | (?P<comparator><=|>=|!=|=|<(?![^>\s]*>)|>)
    | (?P<minus>-)
    | (?P<full_iri><[^>\s]*>)
    | (?P<var>\?[A-Za-z_]\w*)
    | (?P<param>\$[A-Za-z_]\w*)
    | (?P<number>\d+(?:\.\d+)?)
    | (?P<qname>[A-Za-z_][\w-]*:(?:[\w-]+(?:\.[\w-]+)*)?|:[\w-]+(?:\.[\w-]+)*)
    | (?P<dot>\.)
    | (?P<colon>:)
    | (?P<name>[A-Za-z_]\w*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise STARQLSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "name" and value.upper() in _KEYWORDS:
                tokens.append(("kw", value.upper(), pos))
            else:
                tokens.append((kind, value, pos))
        pos = match.end()
    tokens.append(("eof", "", pos))
    return tokens


_DURATION_RE = re.compile(
    r"^P(?:(?P<days>\d+)D)?"
    r"(?:T(?:(?P<hours>\d+)H)?(?:(?P<minutes>\d+)M)?"
    r"(?:(?P<seconds>\d+(?:\.\d+)?)S)?)?$"
)


def parse_duration(text: str) -> float:
    """Parse an ISO-8601 duration ("PT10S") or shorthand ("10S") to seconds."""
    text = text.strip()
    match = _DURATION_RE.match(text)
    if match and any(match.groupdict().values()):
        parts = match.groupdict()
        return (
            float(parts["days"] or 0) * 86400
            + float(parts["hours"] or 0) * 3600
            + float(parts["minutes"] or 0) * 60
            + float(parts["seconds"] or 0)
        )
    short = re.match(r"^(\d+(?:\.\d+)?)\s*(S|M|H)$", text, re.IGNORECASE)
    if short:
        value = float(short.group(1))
        unit = short.group(2).upper()
        return value * {"S": 1, "M": 60, "H": 3600}[unit]
    raise STARQLSyntaxError(f"cannot parse duration {text!r}")


_CLOCK_RE = re.compile(r"^(\d{1,2}):(\d{2})(?::(\d{2}))?")


def _parse_clock(text: str) -> float:
    """Parse "00:10:00CET" style start times into seconds since midnight."""
    match = _CLOCK_RE.match(text.strip())
    if match is None:
        raise STARQLSyntaxError(f"cannot parse start time {text!r}")
    hours, minutes = int(match.group(1)), int(match.group(2))
    seconds = int(match.group(3) or 0)
    return hours * 3600 + minutes * 60 + seconds


class _Parser:
    def __init__(self, text: str, prefixes: PrefixMap | None = None) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0
        self.prefixes = prefixes or PrefixMap()

    # -- token helpers -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> tuple[str, str, int]:
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def _next(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept_kw(self, *keywords: str) -> str | None:
        kind, value, _ = self._peek()
        if kind == "kw" and value in keywords:
            self._next()
            return value
        return None

    def _expect_kw(self, keyword: str) -> None:
        if self._accept_kw(keyword) is None:
            raise STARQLSyntaxError(
                f"expected {keyword}, got {self._peek()[1]!r}"
            )

    def _expect(self, kind: str) -> str:
        got, value, pos = self._next()
        if got != kind:
            raise STARQLSyntaxError(
                f"expected {kind}, got {got} {value!r} at {pos}"
            )
        return value

    # -- shared pieces ------------------------------------------------------

    def parse_prefixes(self) -> None:
        while self._accept_kw("PREFIX"):
            kind, value, _ = self._next()
            if kind == "qname" and value.endswith(":"):
                prefix = value[:-1]
            elif kind == "name":
                prefix = value
                self._expect("colon")
            elif kind == "colon":
                prefix = ""
            else:
                raise STARQLSyntaxError(f"bad prefix declaration near {value!r}")
            iri = self._expect("full_iri")
            self.prefixes.bind(prefix, iri[1:-1])

    def _extract_braced_block(self) -> str:
        """Consume a balanced ``{ ... }`` block, returning its raw text."""
        kind, _, start = self._peek()
        if kind != "lbrace":
            raise STARQLSyntaxError(f"expected '{{', got {self._peek()[1]!r}")
        depth = 0
        end = start
        while True:
            kind, value, pos = self._next()
            if kind == "lbrace":
                depth += 1
            elif kind == "rbrace":
                depth -= 1
                if depth == 0:
                    end = pos + 1
                    break
            elif kind == "eof":
                raise STARQLSyntaxError("unterminated '{' block")
        return self._text[start:end]

    def _parse_duration_token(self) -> float:
        value = self._expect("string")
        if self._peek()[0] == "dtsep":
            self._next()
            self._next()  # the xsd:duration datatype qname
        return parse_duration(value[1:-1])

    # -- query ---------------------------------------------------------------

    def parse_query(self) -> STARQLQuery:
        start_offset = self._peek()[2]
        self.parse_prefixes()
        self._expect_kw("CREATE")
        self._expect_kw("STREAM")
        output = self._parse_stream_name()
        self._expect_kw("AS")
        self._expect_kw("CONSTRUCT")
        self._expect_kw("GRAPH")
        self._expect_kw("NOW")
        construct_text = self._extract_braced_block()
        construct_atoms, construct_filters = parse_bgp(construct_text, self.prefixes)
        construct_atoms = [_normalize_rdf_type(a) for a in construct_atoms]
        if construct_filters:
            raise STARQLSyntaxError("CONSTRUCT patterns cannot contain FILTER")

        self._expect_kw("FROM")
        windows: list[WindowClause] = []
        statics: list[str] = []
        ontology: str | None = None
        while True:
            if self._accept_kw("STREAM"):
                windows.append(self._parse_window_clause())
            elif self._accept_kw("STATIC"):
                self._expect_kw("DATA")
                statics.append(self._expect("full_iri")[1:-1])
            elif self._accept_kw("ONTOLOGY"):
                ontology = self._expect("full_iri")[1:-1]
            else:
                raise STARQLSyntaxError(
                    f"expected STREAM/STATIC DATA/ONTOLOGY, got {self._peek()[1]!r}"
                )
            if self._peek()[0] == "comma":
                self._next()
                continue
            break

        pulse: PulseClause | None = None
        if self._accept_kw("USING"):
            self._expect_kw("PULSE")
            self._expect_kw("WITH")
            start: float | None = None
            if self._accept_kw("START"):
                self._expect("comparator")  # '='
                start = _parse_clock(self._expect("string")[1:-1])
                if self._peek()[0] == "comma":
                    self._next()
            self._expect_kw("FREQUENCY")
            self._expect("comparator")  # '='
            frequency = self._parse_duration_token()
            pulse = PulseClause(start, frequency)

        self._expect_kw("WHERE")
        where_text = self._extract_braced_block()
        where_atoms, where_filters = parse_bgp(where_text, self.prefixes)
        where_atoms = [_normalize_rdf_type(a) for a in where_atoms]

        sequence_method, sequence_alias = "StdSeq", "seq"
        if self._accept_kw("SEQUENCE"):
            self._expect_kw("BY")
            sequence_method = self._expect("name")
            if self._accept_kw("AS"):
                sequence_alias = self._next()[1]

        having: HavingExpr | None = None
        if self._accept_kw("HAVING"):
            having = self._parse_having()

        if not windows:
            raise STARQLSyntaxError("STARQL queries need at least one FROM STREAM")
        end_offset = self._peek()[2]
        return STARQLQuery(
            output_stream=output,
            construct_atoms=tuple(construct_atoms),
            windows=tuple(windows),
            static_data=tuple(statics),
            ontology_iri=ontology,
            pulse=pulse,
            where_atoms=tuple(where_atoms),
            where_filters=tuple(where_filters),
            sequence_method=sequence_method,
            sequence_alias=sequence_alias,
            having=having,
            prefixes=self.prefixes,
            text=self._text[start_offset:end_offset].strip(),
        )

    def _parse_stream_name(self) -> str:
        kind, value, _ = self._next()
        if kind in ("name", "qname"):
            return value
        raise STARQLSyntaxError(f"expected stream name, got {value!r}")

    def _parse_window_clause(self) -> WindowClause:
        stream = self._parse_stream_name()
        self._expect("lbracket")
        self._expect_kw("NOW")
        self._expect("minus")
        range_seconds = self._parse_duration_token()
        self._expect("comma")
        self._expect_kw("NOW")
        self._expect("rbracket")
        self._expect("arrow")
        slide_seconds = self._parse_duration_token()
        return WindowClause(stream, range_seconds, slide_seconds)

    # -- HAVING language -------------------------------------------------------

    def _parse_having(self) -> HavingExpr:
        return self._parse_or()

    def _parse_or(self) -> HavingExpr:
        left = self._parse_and()
        operands = [left]
        while self._accept_kw("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return left
        return BoolOp("OR", tuple(operands))

    def _parse_and(self) -> HavingExpr:
        left = self._parse_unary()
        operands = [left]
        while self._accept_kw("AND"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return left
        return BoolOp("AND", tuple(operands))

    def _parse_unary(self) -> HavingExpr:
        if self._accept_kw("NOT"):
            return BoolOp("NOT", (self._parse_unary(),))
        return self._parse_primary()

    def _parse_primary(self) -> HavingExpr:
        kind, value, _ = self._peek()
        if kind == "lparen":
            self._next()
            inner = self._parse_if_or_having()
            self._expect("rparen")
            return inner
        if kind == "kw" and value == "IF":
            return self._parse_if()
        if kind == "kw" and value == "EXISTS":
            return self._parse_exists()
        if kind == "kw" and value == "FORALL":
            return self._parse_forall()
        if kind == "kw" and value == "GRAPH":
            return self._parse_graph_pattern()
        if kind in ("name", "qname") and self._is_call_ahead():
            return self._parse_call()
        return self._parse_comparison()

    def _parse_if_or_having(self) -> HavingExpr:
        if self._peek()[0] == "kw" and self._peek()[1] == "IF":
            return self._parse_if()
        return self._parse_having()

    def _parse_if(self) -> HavingExpr:
        self._expect_kw("IF")
        premise = self._parse_having()
        self._expect_kw("THEN")
        conclusion = self._parse_having()
        return Implies(premise, conclusion)

    def _parse_exists(self) -> HavingExpr:
        self._expect_kw("EXISTS")
        variables = [Variable(self._expect("var")[1:])]
        while self._peek()[0] == "comma":
            self._next()
            variables.append(Variable(self._expect("var")[1:]))
        self._expect_kw("IN")
        if self._accept_kw("SEQ") is None:
            # allow the lowercase alias name used after SEQUENCE BY ... AS
            self._next()
        kind, value, _ = self._peek()
        if kind == "colon":
            self._next()
        return Exists(tuple(variables), self._parse_having())

    def _parse_forall(self) -> HavingExpr:
        self._expect_kw("FORALL")
        index_vars: list[Variable] = []
        constraints: list[Comparison] = []
        first = Variable(self._expect("var")[1:])
        index_vars.append(first)
        previous = first
        while self._peek()[0] == "comparator":
            op = self._next()[1]
            nxt = Variable(self._expect("var")[1:])
            constraints.append(Comparison(op, previous, nxt))
            index_vars.append(nxt)
            previous = nxt
        self._expect_kw("IN")
        if self._accept_kw("SEQ") is None:
            self._next()  # sequence alias
        value_vars: list[Variable] = []
        while self._peek()[0] == "comma":
            self._next()
            value_vars.append(Variable(self._expect("var")[1:]))
        if self._peek()[0] == "colon":
            self._next()
        body = self._parse_having()
        return Forall(
            tuple(index_vars), tuple(constraints), tuple(value_vars), body
        )

    def _parse_graph_pattern(self) -> GraphPattern:
        self._expect_kw("GRAPH")
        state = Variable(self._expect("var")[1:])
        self._expect("lbrace")
        atoms: list[Atom] = []
        while self._peek()[0] != "rbrace":
            atoms.append(self._parse_state_atom())
            if self._peek()[0] in ("dot", "semicolon"):
                self._next()
        self._expect("rbrace")
        return GraphPattern(state, tuple(atoms))

    def _parse_state_atom(self) -> Atom:
        subject = self._parse_term()
        kind, value, _ = self._peek()
        if kind == "name" and value == "a":
            self._next()
            cls = self._parse_iri_or_param()
            return Atom(_as_iri(cls), (subject,))
        predicate = self._parse_iri_or_param()
        kind, _, _ = self._peek()
        if kind in ("rbrace", "dot", "semicolon"):
            # existential object: { $var sie:showsFailure } holds when any
            # showsFailure assertion on $var exists in the state
            obj: Term = _fresh_existential()
            return Atom(_as_iri(predicate), (subject, obj))
        obj = self._parse_term()
        return Atom(_as_iri(predicate), (subject, obj))

    def _is_call_ahead(self) -> bool:
        """NAME '(' or NAME '.' NAME '(' or QNAME '(' — a call follows."""
        kind, _, _ = self._peek()
        if kind not in ("name", "qname"):
            return False
        if self._peek(1)[0] == "lparen":
            return True
        return (
            self._peek(1)[0] == "dot"
            and self._peek(2)[0] in ("name", "qname", "kw")
            and self._peek(3)[0] == "lparen"
        )

    def _parse_call(self) -> HavingExpr:
        name = self._next()[1]
        if self._peek()[0] == "dot":
            self._next()
            name = f"{name}.{self._next()[1]}"
        name = name.replace(":", ".")
        self._expect("lparen")
        args: list[Term] = []
        while self._peek()[0] != "rparen":
            args.append(self._parse_term())
            if self._peek()[0] == "comma":
                self._next()
        self._expect("rparen")
        upper = name.upper()
        if upper in SQL_AGG_FUNCTIONS and self._peek()[0] == "comparator":
            return self._finish_aggregate_comparison(upper, args)
        return MacroCall(name.upper(), tuple(args))

    def _finish_aggregate_comparison(
        self, function: str, args: list[Term]
    ) -> AggregateComparison:
        op = self._expect("comparator")
        value = self._parse_term()
        if function == "PEARSON":
            if len(args) != 4:
                raise STARQLSyntaxError(
                    "PEARSON expects (?var, attr, ?var, attr)"
                )
            subject, attribute, subject2, attribute2 = args
            return AggregateComparison(
                function,
                _as_var(subject),
                _as_iri(attribute),
                op,
                value,
                second_subject=_as_var(subject2),
                second_attribute=_as_iri(attribute2),
            )
        if len(args) != 2:
            raise STARQLSyntaxError(f"{function} expects (?var, attribute)")
        subject, attribute = args
        return AggregateComparison(
            function, _as_var(subject), _as_iri(attribute), op, value
        )

    def _parse_comparison(self) -> HavingExpr:
        left_terms = [self._parse_term()]
        while self._peek()[0] == "comma":
            # "?i, ?j < ?k" sugar: both compared to the right side
            self._next()
            left_terms.append(self._parse_term())
        op = self._expect("comparator")
        right = self._parse_term()
        comparisons = [Comparison(op, left, right) for left in left_terms]
        if len(comparisons) == 1:
            return comparisons[0]
        return BoolOp("AND", tuple(comparisons))

    # -- terms ----------------------------------------------------------------

    def _parse_term(self) -> Term:
        kind, value, _ = self._peek()
        if kind == "var":
            self._next()
            return Variable(value[1:])
        if kind == "param":
            self._next()
            return Variable(value)  # '$name' marks a macro parameter
        if kind == "number":
            self._next()
            if "." in value:
                return Literal(value, XSD.double)
            return Literal(value, XSD.integer)
        if kind == "string":
            self._next()
            lexical = value[1:-1]
            if self._peek()[0] == "dtsep":
                self._next()
                datatype = self._parse_iri_or_param()
                return Literal(lexical, _as_iri(datatype))
            return Literal(lexical, XSD.string)
        return self._parse_iri_or_param()

    def _parse_iri_or_param(self) -> Term:
        kind, value, _ = self._next()
        if kind == "full_iri":
            return IRI(value[1:-1])
        if kind == "qname":
            if value.startswith(":"):
                return self.prefixes.expand("" + value)
            return self.prefixes.expand(value)
        if kind == "param":
            return Variable(value)
        raise STARQLSyntaxError(f"expected an IRI, got {value!r}")

    # -- CREATE AGGREGATE ---------------------------------------------------------

    def parse_aggregate(self) -> AggregateMacro:
        self.parse_prefixes()
        self._expect_kw("CREATE")
        self._expect_kw("AGGREGATE")
        name = self._next()[1]
        if self._peek()[0] == "dot":
            self._next()
            name = f"{name}.{self._next()[1]}"
        name = name.replace(":", ".").upper()
        self._expect("lparen")
        parameters: list[str] = []
        while self._peek()[0] != "rparen":
            parameters.append(self._expect("param"))
            if self._peek()[0] == "comma":
                self._next()
        self._expect("rparen")
        self._expect_kw("AS")
        self._expect_kw("HAVING")
        body = self._parse_having()
        return AggregateMacro(name, tuple(parameters), body)


_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def _normalize_rdf_type(atom: Atom) -> Atom:
    """Turn ``(s, rdf:type, C)`` property atoms into class atoms ``C(s)``."""
    if (
        atom.is_property_atom
        and atom.predicate == _RDF_TYPE
        and isinstance(atom.args[1], IRI)
    ):
        return Atom(atom.args[1], (atom.args[0],))
    return atom


def _as_iri(term: Term) -> IRI:
    if isinstance(term, IRI):
        return term
    if isinstance(term, Variable) and term.name.startswith("$"):
        # parameters stand in for IRIs until substitution
        return IRI(f"urn:starql:param:{term.name[1:]}")
    raise STARQLSyntaxError(f"expected an IRI, got {term}")


def _as_var(term: Term) -> Variable:
    if isinstance(term, Variable):
        return term
    raise STARQLSyntaxError(f"expected a variable, got {term}")


def parse_starql(text: str, prefixes: PrefixMap | None = None) -> STARQLQuery:
    """Parse one STARQL CREATE STREAM query."""
    parser = _Parser(text, prefixes)
    query = parser.parse_query()
    if parser._peek()[0] != "eof":
        raise STARQLSyntaxError(f"trailing input: {parser._peek()[1]!r}")
    return query


def parse_aggregate_macro(
    text: str, prefixes: PrefixMap | None = None
) -> AggregateMacro:
    """Parse one CREATE AGGREGATE macro definition."""
    parser = _Parser(text, prefixes)
    macro = parser.parse_aggregate()
    if parser._peek()[0] != "eof":
        raise STARQLSyntaxError(f"trailing input: {parser._peek()[1]!r}")
    return macro


def parse_document(
    text: str, prefixes: PrefixMap | None = None
) -> tuple[list[STARQLQuery], list[AggregateMacro]]:
    """Parse a document with queries and macros (Figure 1 as one file)."""
    parser = _Parser(text, prefixes)
    queries: list[STARQLQuery] = []
    macros: list[AggregateMacro] = []
    while parser._peek()[0] != "eof":
        # look ahead: CREATE STREAM vs CREATE AGGREGATE (after prefixes)
        save = parser._index
        parser.parse_prefixes()
        if parser._peek()[1] != "CREATE":
            raise STARQLSyntaxError(
                f"expected CREATE, got {parser._peek()[1]!r}"
            )
        following = parser._peek(1)[1]
        parser._index = save
        if following == "AGGREGATE":
            macros.append(parser.parse_aggregate())
        else:
            queries.append(parser.parse_query())
    return queries, macros
