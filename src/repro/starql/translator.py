"""STARQL2SQL(+): enrichment, unfolding and plan generation.

This is OPTIQUE's full three-stage evaluation pipeline for one STARQL
query:

1. **enrichment** — the WHERE pattern is rewritten against the OWL 2 QL
   TBox (PerfectRef), so implied bindings are not missed;
2. **unfolding** — the enriched UCQ is translated through the mappings
   into a *fleet* of SQL blocks over the static sources (the paper's
   "fleet with a large number of low-level data queries");
3. **execution plan** — HAVING macros/aggregates are compiled to sequence
   UDFs, their attributes resolved through *stream* mappings, and the
   whole query becomes one :class:`~repro.exastream.plan.ContinuousPlan`
   plus printable SQL(+) text.

The output also carries a :class:`ConstructTemplate` that turns result
rows back into RDF triples for the CONSTRUCTed output stream.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from ..exastream.engine import StreamEngine
from ..exastream.plan import (
    AggregateCall,
    AggregateSpec,
    ContinuousPlan,
    OutputColumn,
    StaticRef,
    WindowedStreamRef,
)
from ..mappings import (
    ColumnSpec,
    MappingAssertion,
    MappingCollection,
    TemplateSpec,
    Unfolder,
    UnfoldingResult,
)
from ..ontology import Ontology
from ..queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..rdf import IRI, Literal, Term, Variable
from ..rewriting import PerfectRef
from ..sql import (
    BaseTable,
    BinOp,
    Col,
    Expr,
    Func,
    Lit,
    SelectItem,
    SelectQuery,
    SubSelect,
    TableFunction,
    UnionQuery,
    print_query,
)
from ..streams import WindowSpec
from .ast import (
    AggregateComparison,
    BoolOp,
    HavingExpr,
    MacroCall,
    STARQLQuery,
)
from .macros import MacroRegistry, collect_attributes, compile_macro

__all__ = ["TranslationError", "ConstructTemplate", "TranslationResult", "STARQLTranslator"]

_translator_counter = itertools.count(1)

# mirrors the parser's string-literal token; capturing group keeps the
# literals in re.split output (at odd indices)
_STRING_LITERAL = re.compile(r'("(?:[^"\\]|\\.)*")')


class TranslationError(ValueError):
    """Raised when a STARQL query cannot be translated."""


@dataclass
class ConstructTemplate:
    """Rebuild CONSTRUCT triples from engine result rows."""

    output_stream: str
    atoms: tuple  # construct atoms (class or property)
    slots: dict[Variable, int]  # variable -> result column index
    constructors: dict[Variable, Any]  # variable -> TermConstructor

    def triples_for(self, row: tuple) -> list[tuple]:
        """RDF triples asserted by one result row (GRAPH NOW contents)."""
        from ..rdf import RDF

        def resolve(term: Term) -> Term:
            if isinstance(term, Variable):
                value = row[self.slots[term]]
                constructor = self.constructors.get(term)
                if constructor is not None:
                    return constructor.construct(value)
                return IRI(str(value))
            return term

        triples = []
        for atom in self.atoms:
            if atom.is_class_atom:
                triples.append((resolve(atom.args[0]), RDF.type, atom.predicate))
            else:
                triples.append(
                    (resolve(atom.args[0]), atom.predicate, resolve(atom.args[1]))
                )
        return triples


@dataclass
class TranslationResult:
    """Everything produced for one STARQL query."""

    plan: ContinuousPlan
    sql: str
    fleet_size: int
    enriched: UnionOfConjunctiveQueries
    unfolding: UnfoldingResult
    construct: ConstructTemplate
    starql: STARQLQuery


@dataclass
class _StreamAttribute:
    """A HAVING attribute resolved through a stream mapping."""

    attribute: IRI
    stream_table: str
    subject_template: TemplateSpec
    value_column: str
    key_columns: tuple[str, ...]


class STARQLTranslator:
    """Translator bound to one deployment (ontology + mappings + engine)."""

    def __init__(
        self,
        ontology: Ontology,
        mappings: MappingCollection,
        engine: StreamEngine,
        macros: MacroRegistry | None = None,
        primary_keys: dict[str, tuple[str, ...]] | None = None,
        use_tmappings: bool = True,
    ) -> None:
        self.ontology = ontology
        self.mappings = mappings
        self.engine = engine
        self.macros = macros or MacroRegistry()
        if use_tmappings:
            # Ontop-style compilation: the class/role hierarchy is folded
            # into the mappings; the rewriter handles only the residual
            # existential axioms.  This avoids PerfectRef's exponential
            # UCQ blowup on multi-atom WHERE clauses over large TBoxes.
            from ..mappings.saturation import (
                existential_subontology,
                saturate_mappings,
            )

            self.saturated = saturate_mappings(mappings, ontology)
            self._rewriter = PerfectRef(existential_subontology(ontology))
        else:
            self.saturated = mappings
            self._rewriter = PerfectRef(ontology)
        self._unfolder = Unfolder(self.saturated, primary_keys)
        self._text_cache: dict[str, TranslationResult] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API -----------------------------------------------------------

    @staticmethod
    def normalize_text(text: str) -> str:
        """The translation-cache key: whitespace-insensitive query text.

        Whitespace inside double-quoted literals (pulse clock values,
        typed constants) is significant and preserved verbatim — only
        the text between literals is collapsed.
        """
        parts = _STRING_LITERAL.split(text)
        for i in range(0, len(parts), 2):  # odd indices are the literals
            parts[i] = " ".join(parts[i].split())
        return "".join(parts)

    def translate_text(self, text: str) -> TranslationResult:
        """Parse + translate once per normalized query text (prepared
        queries).

        The cached :class:`TranslationResult` is name-neutral — its plan
        carries an auto-generated name; callers registering it must clone
        the plan (``dataclasses.replace``) before renaming, since the same
        cached plan may back many registered queries.
        """
        from .parser import parse_starql

        key = self.normalize_text(text)
        cached = self._text_cache.get(key)
        if cached is None:
            self.cache_misses += 1
            cached = self.translate(parse_starql(text))
            self._text_cache[key] = cached
        else:
            self.cache_hits += 1
        return cached

    def translate(
        self, query: STARQLQuery, name: str | None = None
    ) -> TranslationResult:
        """Run enrichment + unfolding and build the continuous plan."""
        answer_vars = query.where_variables()
        if not answer_vars:
            raise TranslationError("WHERE pattern binds no variables")
        cq = ConjunctiveQuery(answer_vars, query.where_atoms, query.where_filters)

        enriched = self._rewriter.rewrite(cq)
        unfolding = self._unfolder.unfold(enriched)
        if not unfolding.disjuncts:
            raise TranslationError(
                "WHERE pattern unfolds to nothing: no mappings for its terms"
            )
        # WHERE bindings come from the static sources; disjuncts that read
        # streams (e.g. sensors known only through measurements) are not
        # retrievable at registration time and are dropped.
        static_disjuncts = [d for d in unfolding.disjuncts if not d.uses_stream]
        if not static_disjuncts:
            raise TranslationError(
                "WHERE pattern unfolds to stream-only sources; it must bind "
                "entities from static data"
            )
        sources = {s for d in static_disjuncts for s in d.sources}
        if len(sources) != 1:
            raise TranslationError(
                f"WHERE unfolds across multiple static sources {sources}; "
                "deploy a federated view first"
            )
        static_source = next(iter(sources))

        static_alias = "st"
        # UNION (distinct) across blocks: redundant disjuncts must not
        # duplicate binding rows, or COUNT-style aggregates would inflate.
        if len(static_disjuncts) == 1:
            static_sql = print_query(static_disjuncts[0].select)
        else:
            static_sql = print_query(
                UnionQuery(
                    tuple(d.select for d in static_disjuncts), all=False
                )
            )
        unfolding = UnfoldingResult(static_disjuncts, unfolding.answer_variables)
        output_names = [
            f"v{i}_{v.name}" for i, v in enumerate(unfolding.answer_variables)
        ]
        var_column: dict[Variable, str] = {
            v: n for v, n in zip(unfolding.answer_variables, output_names)
        }

        spec = WindowSpec(
            query.windows[0].range_seconds, query.windows[0].slide_seconds
        )
        pulse_start = query.pulse.start_seconds if query.pulse else None

        builder = _PlanBuilder(
            translator=self,
            query=query,
            spec=spec,
            static_alias=static_alias,
            static_source=static_source,
            static_sql=static_sql,
            var_column=var_column,
            pulse_start=pulse_start,
        )
        if query.having is not None:
            builder.add_having(query.having)
        plan = builder.build(name or f"starql_{next(_translator_counter)}")
        plan.source = query.text

        constructors = dict(unfolding.disjuncts[0].constructors)
        slots = {}
        group_names = plan.output_names()
        for var in query.construct_variables():
            short = var_column.get(var)
            if short is None:
                raise TranslationError(
                    f"CONSTRUCT variable ?{var.name} is not bound in WHERE"
                )
            # output columns are named after the static projection
            slots[var] = group_names.index(short)
        construct = ConstructTemplate(
            output_stream=query.output_stream,
            atoms=query.construct_atoms,
            slots=slots,
            constructors=constructors,
        )

        sql_text = self._render_sql(plan, static_sql)
        return TranslationResult(
            plan=plan,
            sql=sql_text,
            fleet_size=unfolding.fleet_size,
            enriched=enriched,
            unfolding=unfolding,
            construct=construct,
            starql=query,
        )

    # -- SQL(+) rendering -------------------------------------------------------

    def _render_sql(self, plan: ContinuousPlan, static_sql: str) -> str:
        from ..sql import parse_sql

        from_items: list = []
        for window in plan.windows:
            from_items.append(
                TableFunction(
                    "timeSlidingWindow",
                    (
                        BaseTable(window.stream),
                        Lit(window.spec.range_seconds),
                        Lit(window.spec.slide_seconds),
                    ),
                    alias=window.alias,
                )
            )
        for static in plan.statics:
            from_items.append(SubSelect(parse_sql(static.sql), static.alias))

        if plan.aggregate is not None:
            select_items = [
                SelectItem(expr, name)
                for expr, name in zip(
                    plan.aggregate.group_by, plan.aggregate.group_names
                )
            ]
            for call in plan.aggregate.calls:
                if call.argument is not None:
                    args: tuple = (call.argument,)
                else:
                    args = tuple(
                        Col(*actual.split(".", 1))
                        if "." in actual
                        else Col(None, actual)
                        for _, actual in call.argument_columns
                    )
                select_items.append(
                    SelectItem(Func(call.function, args), call.output_name)
                )
            rendered = SelectQuery(
                select=tuple(select_items),
                from_=tuple(from_items),
                where=tuple(plan.join_predicates + plan.filters),
                group_by=plan.aggregate.group_by,
                having=plan.aggregate.having,
            )
        else:
            rendered = SelectQuery(
                select=tuple(
                    SelectItem(c.expr, c.name) for c in plan.projection
                ),
                from_=tuple(from_items),
                where=tuple(plan.join_predicates + plan.filters),
                distinct=plan.distinct,
            )
        return print_query(rendered)

    # -- attribute resolution -----------------------------------------------------

    def resolve_stream_attribute(self, attribute: IRI) -> _StreamAttribute:
        """Find the stream mapping providing values of ``attribute``."""
        candidates = [
            m
            for m in self.saturated.for_predicate(attribute)
            if m.is_stream
        ]
        if not candidates:
            raise TranslationError(
                f"attribute {attribute.local_name} has no stream mapping"
            )
        mapping = candidates[0]
        source = mapping.source
        if not isinstance(source, SelectQuery) or len(source.from_) != 1:
            raise TranslationError(
                f"stream mapping for {attribute.local_name} must read one stream"
            )
        base = source.from_[0]
        if not isinstance(base, BaseTable):
            raise TranslationError("stream mapping source must be a base stream")
        if not isinstance(mapping.subject, TemplateSpec):
            raise TranslationError("stream mapping subject must be a template")
        obj = mapping.object
        if not isinstance(obj, ColumnSpec):
            raise TranslationError(
                f"stream mapping object for {attribute.local_name} must be a column"
            )
        # resolve projection aliases back to stream columns
        rename: dict[str, str] = {}
        for item in source.select:
            if isinstance(item.expr, Col):
                rename[item.alias or item.expr.name] = item.expr.name
        key_columns = tuple(
            rename.get(c, c) for c in mapping.subject.template.columns
        )
        return _StreamAttribute(
            attribute=attribute,
            stream_table=base.name,
            subject_template=mapping.subject,
            value_column=rename.get(obj.column, obj.column),
            key_columns=key_columns,
        )


# ---------------------------------------------------------------------------
# Plan assembly
# ---------------------------------------------------------------------------


@dataclass
class _PlanBuilder:
    translator: STARQLTranslator
    query: STARQLQuery
    spec: WindowSpec
    static_alias: str
    static_source: str
    static_sql: str
    var_column: dict[Variable, str]
    pulse_start: float | None

    _windows: dict[str, WindowedStreamRef] = field(default_factory=dict)
    _window_computed: dict[str, list[OutputColumn]] = field(default_factory=dict)
    _joins: list[Expr] = field(default_factory=list)
    _calls: list[AggregateCall] = field(default_factory=list)
    _having: list[Expr] = field(default_factory=list)
    _alias_counter: itertools.count = field(default_factory=lambda: itertools.count(1))
    _call_counter: itertools.count = field(default_factory=lambda: itertools.count(0))

    # -- having translation -------------------------------------------------

    def add_having(self, expr: HavingExpr) -> None:
        """Translate the HAVING clause into calls + predicates."""
        predicate = self._translate(expr)
        self._having.append(predicate)

    def _translate(self, expr: HavingExpr) -> Expr:
        if isinstance(expr, MacroCall):
            return self._translate_macro(expr)
        if isinstance(expr, AggregateComparison):
            return self._translate_aggregate(expr)
        if isinstance(expr, BoolOp):
            if expr.op == "NOT":
                from ..sql import UnaryOp

                return UnaryOp("NOT", self._translate(expr.operands[0]))
            combined = self._translate(expr.operands[0])
            for operand in expr.operands[1:]:
                combined = BinOp(expr.op, combined, self._translate(operand))
            return combined
        raise TranslationError(
            "top-level HAVING supports macro calls, window aggregates and "
            f"boolean combinations; got {type(expr).__name__}"
        )

    def _translate_macro(self, call: MacroCall) -> Expr:
        body = self.translator.macros.expand(call)
        subject = call.args[0]
        if not isinstance(subject, Variable):
            raise TranslationError("macro subject must be a WHERE variable")
        attributes = sorted(collect_attributes(body), key=lambda a: a.value)
        if not attributes:
            raise TranslationError(
                f"macro {call.name} references no stream attributes"
            )
        resolved = [
            self.translator.resolve_stream_attribute(a) for a in attributes
        ]
        streams = {r.stream_table for r in resolved}
        if len(streams) > 1:
            raise TranslationError(
                "one macro must read attributes of a single stream; "
                f"got {streams}"
            )
        alias = self._window_for(resolved[0], subject)
        source = self.translator.engine.stream(resolved[0].stream_table)
        ts_column = source.stream.schema.time_column

        roles = {r.attribute: f"attr{i}" for i, r in enumerate(resolved)}
        udf_fn = compile_macro(body, subject, roles)
        udf_name = f"MACRO_{call.name.replace('.', '_')}_{next(self._call_counter)}"
        arg_names = ("ts",) + tuple(roles[r.attribute] for r in resolved)
        self.translator.engine.udfs.register_sequence(udf_name, udf_fn, arg_names)

        columns = [("ts", f"{alias}.{ts_column}")]
        for r in resolved:
            columns.append((roles[r.attribute], f"{alias}.{r.value_column}"))
        output = f"cond{len(self._calls)}"
        self._calls.append(
            AggregateCall(udf_name, output, argument_columns=tuple(columns))
        )
        return BinOp("=", Col(None, output), Lit(True))

    def _translate_aggregate(self, agg: AggregateComparison) -> Expr:
        resolved = self.translator.resolve_stream_attribute(agg.attribute)
        alias = self._window_for(resolved, agg.subject)
        output = f"cond{len(self._calls)}"
        if agg.function == "PEARSON":
            if agg.second_subject is None or agg.second_attribute is None:
                raise TranslationError("PEARSON needs two (var, attribute) pairs")
            second = self.translator.resolve_stream_attribute(agg.second_attribute)
            alias2 = self._window_for(
                second, agg.second_subject, force_new=agg.second_subject != agg.subject
            )
            source = self.translator.engine.stream(resolved.stream_table)
            ts = source.stream.schema.time_column
            if alias2 != alias:
                self._joins.append(
                    BinOp("=", Col(alias, ts), Col(alias2, ts))
                )
            self._calls.append(
                AggregateCall(
                    "PEARSON",
                    output,
                    argument_columns=(
                        ("x", f"{alias}.{resolved.value_column}"),
                        ("y", f"{alias2}.{second.value_column}"),
                    ),
                )
            )
        elif agg.function in ("SLOPE", "SPREAD"):
            source = self.translator.engine.stream(resolved.stream_table)
            ts = source.stream.schema.time_column
            columns = [("val", f"{alias}.{resolved.value_column}")]
            if agg.function == "SLOPE":
                columns.insert(0, ("ts", f"{alias}.{ts}"))
            self._calls.append(
                AggregateCall(
                    agg.function, output, argument_columns=tuple(columns)
                )
            )
        else:
            self._calls.append(
                AggregateCall(
                    agg.function,
                    output,
                    argument=Col(alias, resolved.value_column),
                )
            )
        value: Expr
        if isinstance(agg.value, Literal):
            value = Lit(agg.value.to_python())
        else:
            raise TranslationError("aggregate comparisons need literal bounds")
        return BinOp(agg.op, Col(None, output), value)

    # -- window/stream management ------------------------------------------------

    def _window_for(
        self,
        attribute: _StreamAttribute,
        subject: Variable,
        force_new: bool = False,
    ) -> str:
        """The window alias joining ``subject`` to its measurements."""
        subject_column = self.var_column.get(subject)
        if subject_column is None:
            raise TranslationError(
                f"HAVING subject ?{subject.name} is not bound in WHERE"
            )
        key = f"{attribute.stream_table}|{subject.name}"
        if not force_new and key in self._windows:
            return self._windows[key].alias

        alias = f"w{next(self._alias_counter)}"
        window_clause = None
        for clause in self.query.windows:
            if clause.stream == attribute.stream_table:
                window_clause = clause
                break
        if window_clause is None and len(self.query.windows) == 1:
            window_clause = self.query.windows[0]
        if window_clause is None:
            raise TranslationError(
                f"no FROM STREAM clause matches stream {attribute.stream_table!r}"
            )
        if window_clause.stream != attribute.stream_table:
            raise TranslationError(
                f"attribute {attribute.attribute.local_name} lives on stream "
                f"{attribute.stream_table!r} but the query windows "
                f"{window_clause.stream!r}"
            )

        # computed column: the subject IRI built from the template
        template = attribute.subject_template.template
        uri_expr = _template_expr(template, alias, attribute.key_columns)
        computed = OutputColumn(uri_expr, "subject_uri")
        ref = WindowedStreamRef(
            stream=attribute.stream_table,
            spec=WindowSpec(
                window_clause.range_seconds, window_clause.slide_seconds
            ),
            alias=alias,
            computed=(computed,),
        )
        self._windows[key] = ref
        self._joins.append(
            BinOp(
                "=",
                Col(alias, "subject_uri"),
                Col(self.static_alias, subject_column),
            )
        )
        return alias

    # -- assembly ----------------------------------------------------------------

    def build(self, name: str) -> ContinuousPlan:
        if not self._windows:
            # No HAVING attributes: gate output on the pulse of the first
            # declared stream (pure static bindings per window).
            clause = self.query.windows[0]
            self._windows["__pulse__"] = WindowedStreamRef(
                stream=clause.stream,
                spec=WindowSpec(clause.range_seconds, clause.slide_seconds),
                alias="w0",
            )
        group_by = tuple(
            Col(self.static_alias, column)
            for column in self.var_column.values()
        )
        group_names = tuple(self.var_column.values())
        aggregate = AggregateSpec(
            group_by=group_by,
            group_names=group_names,
            calls=tuple(self._calls),
            having=tuple(self._having),
        )
        return ContinuousPlan(
            name=name,
            windows=list(self._windows.values()),
            statics=[
                StaticRef(
                    source=self.static_source,
                    sql=self.static_sql,
                    alias=self.static_alias,
                )
            ],
            join_predicates=self._joins,
            filters=[],
            projection=[],
            aggregate=aggregate,
            start=self.pulse_start,
        )


def _template_expr(template, alias: str, key_columns: Sequence[str]) -> Expr:
    """Concatenation expression building a template IRI from stream columns."""
    pattern = template.pattern
    parts: list[Expr] = []
    cursor = 0
    for placeholder, column in zip(template.columns, key_columns):
        start = pattern.index("{" + placeholder + "}", cursor)
        if start > cursor:
            parts.append(Lit(pattern[cursor:start]))
        parts.append(Col(alias, column))
        cursor = start + len(placeholder) + 2
    if cursor < len(pattern):
        parts.append(Lit(pattern[cursor:]))
    expr = parts[0]
    for part in parts[1:]:
        expr = BinOp("||", expr, part)
    return expr
