"""STARQL abstract syntax.

A STARQL query (Figure 1 of the paper) has the shape::

    CREATE STREAM S_out AS
    CONSTRUCT GRAPH NOW { ?c2 rdf:type :MonInc }
    FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration,
         STATIC DATA <iri>,
         ONTOLOGY <iri>
    USING PULSE WITH START = "00:10:00CET", FREQUENCY = "PT1S"
    WHERE { ... basic graph pattern ... }
    SEQUENCE BY StdSeq AS seq
    HAVING MONOTONIC.HAVING(?c2, sie:hasValue)

plus ``CREATE AGGREGATE`` macro definitions whose bodies are first-order
conditions over the window's state sequence (EXISTS/FORALL over state
indexes, GRAPH patterns per state, value comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..queries import Atom, Filter
from ..rdf import IRI, PrefixMap, Term, Variable

__all__ = [
    "WindowClause",
    "PulseClause",
    "GraphPattern",
    "Comparison",
    "MacroCall",
    "AggregateComparison",
    "Exists",
    "Forall",
    "BoolOp",
    "Implies",
    "HavingExpr",
    "AggregateMacro",
    "STARQLQuery",
]


@dataclass(frozen=True)
class WindowClause:
    """``FROM STREAM name [NOW - range, NOW] -> slide``."""

    stream: str
    range_seconds: float
    slide_seconds: float


@dataclass(frozen=True)
class PulseClause:
    """``USING PULSE WITH START = ..., FREQUENCY = ...``."""

    start_seconds: float | None
    frequency_seconds: float


# ---------------------------------------------------------------------------
# HAVING mini-language
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphPattern:
    """``GRAPH ?i { pattern }`` — atoms evaluated in the state ``?i``.

    Atoms may mention macro parameters (``$var``/``$attr``) before
    substitution; property atoms with a missing object (the paper's
    ``{$var sie:showsFailure}``) are encoded with a fresh object variable
    and ``existential=True`` semantics.
    """

    state: Variable
    atoms: tuple[Atom, ...]


@dataclass(frozen=True)
class Comparison:
    """A comparison between state indexes or between data values."""

    op: str
    left: Term
    right: Term


@dataclass(frozen=True)
class MacroCall:
    """``NAME.NAME(args)`` in HAVING position."""

    name: str
    args: tuple[Term, ...]


@dataclass(frozen=True)
class AggregateComparison:
    """``fn(?var, attr) op value`` — window aggregate over an attribute.

    ``fn`` is AVG/MIN/MAX/SUM/COUNT or a sequence UDF such as SLOPE.
    ``second`` supports two-attribute aggregates (PEARSON).
    """

    function: str
    subject: Variable
    attribute: IRI
    op: str
    value: Term
    second_subject: Variable | None = None
    second_attribute: IRI | None = None


@dataclass(frozen=True)
class Exists:
    """``EXISTS ?k IN SEQ : body``."""

    variables: tuple[Variable, ...]
    body: HavingExpr


@dataclass(frozen=True)
class Forall:
    """``FORALL ?i < ?j IN seq, ?x, ?y : body``.

    ``index_variables`` are quantified over state indexes with the parsed
    ordering constraints recorded in ``index_constraints``; ``value_variables``
    are universally quantified data variables bound by GRAPH patterns in
    the body's premise.
    """

    index_variables: tuple[Variable, ...]
    index_constraints: tuple[Comparison, ...]
    value_variables: tuple[Variable, ...]
    body: HavingExpr


@dataclass(frozen=True)
class BoolOp:
    """AND / OR / NOT over having expressions."""

    op: str  # "AND" | "OR" | "NOT"
    operands: tuple[HavingExpr, ...]


@dataclass(frozen=True)
class Implies:
    """``IF premise THEN conclusion``."""

    premise: HavingExpr
    conclusion: HavingExpr


HavingExpr = Union[
    GraphPattern,
    Comparison,
    MacroCall,
    AggregateComparison,
    Exists,
    Forall,
    BoolOp,
    Implies,
]


@dataclass
class AggregateMacro:
    """``CREATE AGGREGATE name(params) AS HAVING body``."""

    name: str
    parameters: tuple[str, ...]  # e.g. ("$var", "$attr")
    body: HavingExpr


@dataclass
class STARQLQuery:
    """A parsed STARQL continuous query."""

    output_stream: str
    construct_atoms: tuple[Atom, ...]
    windows: tuple[WindowClause, ...]
    static_data: tuple[str, ...]
    ontology_iri: str | None
    pulse: PulseClause | None
    where_atoms: tuple[Atom, ...]
    where_filters: tuple[Filter, ...]
    sequence_method: str
    sequence_alias: str
    having: HavingExpr | None
    prefixes: PrefixMap = field(default_factory=PrefixMap)
    text: str = ""

    def where_variables(self) -> tuple[Variable, ...]:
        """Distinct WHERE variables in first-occurrence order."""
        seen: dict[Variable, None] = {}
        for atom in self.where_atoms:
            for var in atom.variables():
                seen.setdefault(var)
        return tuple(seen)

    def construct_variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for atom in self.construct_atoms:
            out |= set(atom.variables())
        return out
