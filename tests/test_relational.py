"""Tests for the relational schema model and SQLite-backed database."""

import pytest

from repro.relational import Column, Database, ForeignKey, Schema, SQLType, Table


def plant_schema():
    schema = Schema("plant")
    schema.add(
        Table(
            "country",
            [Column("cid", SQLType.INTEGER), Column("name", SQLType.TEXT)],
            primary_key=("cid",),
        )
    )
    schema.add(
        Table(
            "turbine",
            [
                Column("tid", SQLType.INTEGER),
                Column("model", SQLType.TEXT),
                Column("cid", SQLType.INTEGER),
            ],
            primary_key=("tid",),
            foreign_keys=[ForeignKey(("cid",), "country", ("cid",))],
        )
    )
    return schema


class TestSchema:
    def test_duplicate_table_rejected(self):
        schema = plant_schema()
        with pytest.raises(ValueError):
            schema.add(Table("turbine", [Column("x")]))

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a"), Column("a")])

    def test_pk_must_exist(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a")], primary_key=("b",))

    def test_fk_column_must_exist(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                [Column("a")],
                foreign_keys=[ForeignKey(("b",), "x", ("y",))],
            )

    def test_fk_arity_checked(self):
        with pytest.raises(ValueError):
            ForeignKey(("a", "b"), "x", ("y",))

    def test_lookup_helpers(self):
        schema = plant_schema()
        turbine = schema["turbine"]
        assert turbine.column("model").type == SQLType.TEXT
        assert turbine.has_column("cid")
        assert not turbine.has_column("nope")
        with pytest.raises(KeyError):
            turbine.column("nope")
        assert [c.name for c in turbine.non_key_columns()] == ["model"]

    def test_referencing_tables(self):
        schema = plant_schema()
        refs = schema.referencing_tables("country")
        assert len(refs) == 1 and refs[0][0].name == "turbine"

    def test_ddl_contains_constraints(self):
        ddl = plant_schema().ddl()
        assert "PRIMARY KEY (tid)" in ddl
        assert "FOREIGN KEY (cid) REFERENCES country(cid)" in ddl


class TestDatabase:
    def test_create_insert_query(self):
        db = Database(plant_schema())
        db.insert("country", [(1, "Germany"), (2, "Norway")])
        db.insert("turbine", [(10, "SGT-400", 1), (11, "SGT-800", 2)])
        assert db.row_count("turbine") == 2
        rows = db.query(
            "SELECT t.model, c.name FROM turbine t JOIN country c ON t.cid = c.cid "
            "ORDER BY t.tid"
        )
        assert rows == [("SGT-400", "Germany"), ("SGT-800", "Norway")]

    def test_insert_dicts_fills_missing_with_null(self):
        db = Database(plant_schema())
        db.insert_dicts("country", [{"cid": 1}])
        assert db.query("SELECT name FROM country") == [(None,)]

    def test_query_with_names(self):
        db = Database(plant_schema())
        db.insert("country", [(1, "Germany")])
        names, rows = db.query_with_names("SELECT cid AS c, name FROM country")
        assert names == ["c", "name"]
        assert rows == [(1, "Germany")]

    def test_distinct_values(self):
        db = Database(plant_schema())
        db.insert("country", [(1, "A"), (2, "A"), (3, None)])
        assert db.distinct_values("country", "name") == ["A"]

    def test_context_manager(self):
        with Database(plant_schema()) as db:
            db.insert("country", [(1, "X")])
            assert db.row_count("country") == 1
