"""Tests for streams: windows, wCache, sequences, adaptive index, LSH."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Column, SQLType
from repro.streams import (
    AdaptiveIndexer,
    LSHCorrelator,
    ListSource,
    SequencingError,
    SharedWindowReader,
    Stream,
    StreamSchema,
    WindowCache,
    WindowSpec,
    build_sequence,
    exact_pearson,
    merge_sources,
    time_sliding_window,
)
from repro.streams.window import WindowBatch


def schema():
    return StreamSchema(
        (
            Column("ts", SQLType.REAL),
            Column("sensor", SQLType.INTEGER),
            Column("val", SQLType.REAL),
        ),
        time_column="ts",
    )


def msmt_stream():
    return Stream("S_Msmt", schema())


class TestStreamSchema:
    def test_time_index(self):
        assert schema().time_index == 0

    def test_missing_time_column_rejected(self):
        with pytest.raises(ValueError):
            StreamSchema((Column("a"),), time_column="ts")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            StreamSchema((Column("a"), Column("a")), time_column="a")

    def test_list_source_enforces_order(self):
        with pytest.raises(ValueError):
            ListSource(msmt_stream(), [(1.0, 1, 0.0), (0.5, 1, 0.0)])

    def test_list_source_replayable(self):
        src = ListSource(msmt_stream(), [(0.0, 1, 5.0), (1.0, 1, 6.0)])
        assert list(src) == list(src)
        assert src.take(1) == [(0.0, 1, 5.0)]

    def test_merge_sources_ordered(self):
        s1 = ListSource(msmt_stream(), [(0.0, 1, 0.0), (2.0, 1, 0.0)])
        s2 = ListSource(Stream("S2", schema()), [(1.0, 2, 0.0)])
        merged = list(merge_sources([s1, s2]))
        assert [t[0] for _, t in merged] == [0.0, 1.0, 2.0]
        assert merged[1][0] == "S2"


class TestWindows:
    def test_closed_interval_semantics(self):
        rows = [(float(t),) for t in range(5)]
        batches = list(time_sliding_window(rows, WindowSpec(2, 1), 0))
        sizes = {b.window_id: len(b) for b in batches}
        assert sizes[0] == 1 and sizes[1] == 2 and sizes[2] == 3 and sizes[3] == 3

    def test_window_bounds(self):
        rows = [(float(t),) for t in range(4)]
        batches = list(time_sliding_window(rows, WindowSpec(2, 1), 0))
        b2 = batches[2]
        assert (b2.start, b2.end) == (0.0, 2.0)

    def test_slide_larger_than_range(self):
        rows = [(float(t),) for t in range(10)]
        batches = list(time_sliding_window(rows, WindowSpec(1, 3), 0))
        # windows at t=0,3,6,9 each cover [t-1, t]
        assert [len(b) for b in batches] == [1, 2, 2, 2]

    def test_empty_windows_emitted(self):
        rows = [(0.0,), (5.0,)]
        batches = list(time_sliding_window(rows, WindowSpec(1, 1), 0))
        # closed intervals: [(-1,0], [0,1], [1,2], [2,3], [3,4], [4,5]]
        assert [len(b) for b in batches] == [1, 1, 0, 0, 0, 1]

    def test_explicit_start(self):
        rows = [(3.0,), (4.0,)]
        batches = list(time_sliding_window(rows, WindowSpec(2, 1), 0, start=0.0))
        assert batches[0].window_id == 0 and len(batches[0]) == 0
        assert len(batches[4]) == 2  # window [2,4]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WindowSpec(0, 1)
        with pytest.raises(ValueError):
            WindowSpec(1, 0)

    def test_with_window_id_column(self):
        batch = WindowBatch(7, 0.0, 2.0, [(0.0, 1), (1.0, 2)])
        assert batch.with_window_id_column() == [(0.0, 1, 7), (1.0, 2, 7)]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=0, max_size=60),
        st.floats(0.5, 10),
        st.floats(0.5, 10),
    )
    def test_window_contents_match_definition(self, times, rng, slide):
        rows = [(t,) for t in sorted(times)]
        spec = WindowSpec(rng, slide)
        for batch in time_sliding_window(rows, spec, 0):
            expected = [t for (t,) in rows if batch.start <= t <= batch.end]
            assert [t for (t,) in batch.tuples] == expected
            assert batch.end - batch.start == pytest.approx(rng)


class TestWindowCache:
    def make_reader(self, cache, n=20):
        rows = [(float(t), 1, float(t)) for t in range(n)]
        return SharedWindowReader(
            "S_Msmt", iter(rows), WindowSpec(3, 1), 0, cache
        )

    def test_first_read_misses_then_hits(self):
        cache = WindowCache()
        reader = self.make_reader(cache)
        w5 = reader.window(5)
        assert w5 is not None and cache.stats.misses > 0
        before = cache.stats.hits
        again = reader.window(5)
        assert again is w5
        assert cache.stats.hits == before + 1

    def test_materialises_forward(self):
        cache = WindowCache()
        reader = self.make_reader(cache)
        reader.demand_batches()  # a batch-driven consumer declares demand
        reader.window(4)
        # windows 0..4 are now cached
        assert all(("S_Msmt", k) in cache for k in range(5))

    def test_adhoc_window_does_not_latch_assembly(self):
        """Without a batch-demand reference only the requested window is
        assembled — a one-off fallback must not commit every later pulse
        to O(range) batch assembly (the old permanent latch)."""
        cache = WindowCache()
        reader = self.make_reader(cache)
        batch = reader.window(4)
        assert batch is not None and batch.window_id == 4
        assert reader.batch_demand == 0
        assert ("S_Msmt", 4) in cache
        assert all(("S_Msmt", k) not in cache for k in range(4))

    def test_eviction(self):
        cache = WindowCache(capacity=3)
        reader = self.make_reader(cache)
        reader.demand_batches()
        reader.window(10)
        assert len(cache) == 3
        assert cache.stats.evictions > 0

    def test_past_window_after_eviction_returns_none(self):
        cache = WindowCache(capacity=2)
        reader = self.make_reader(cache)
        reader.window(10)
        assert reader.window(0) is None

    def test_beyond_stream_end(self):
        cache = WindowCache()
        reader = self.make_reader(cache, n=5)
        assert reader.window(10_000) is None

    def test_all_windows(self):
        cache = WindowCache()
        reader = self.make_reader(cache, n=6)
        ids = [b.window_id for b in reader.all_windows()]
        assert ids == list(range(6))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            WindowCache(0)

    def test_hit_rate(self):
        cache = WindowCache()
        reader = self.make_reader(cache)
        reader.window(3)
        reader.window(3)
        assert 0 < cache.stats.hit_rate < 1


class TestSequencing:
    def batch(self):
        return WindowBatch(
            0,
            0.0,
            3.0,
            [(0.0, 1, 10.0), (1.0, 1, 11.0), (1.0, 2, 12.0), (3.0, 1, 13.0)],
        )

    def test_states_grouped_by_timestamp(self):
        seq = build_sequence(self.batch(), 0)
        assert len(seq) == 3
        assert [s.timestamp for s in seq] == [0.0, 1.0, 3.0]
        assert len(seq[1]) == 2

    def test_indexes(self):
        seq = build_sequence(self.batch(), 0)
        assert list(seq.indexes()) == [0, 1, 2]

    def test_functionality_ok(self):
        seq = build_sequence(
            self.batch(), 0, functional_key=lambda t: (t[0], t[1])
        )
        assert len(seq) == 3

    def test_functionality_violation(self):
        bad = WindowBatch(0, 0.0, 1.0, [(0.0, 1, 10.0), (0.0, 1, 99.0)])
        with pytest.raises(SequencingError):
            build_sequence(bad, 0, functional_key=lambda t: (t[0], t[1]))

    def test_graph_materialisation(self):
        from repro.rdf import IRI, term_from_python

        def to_triples(t):
            yield (IRI(f"urn:s{t[1]}"), IRI("urn:hasValue"), term_from_python(t[2]))

        seq = build_sequence(self.batch(), 0, to_triples=to_triples)
        assert seq[0].graph is not None and len(seq[0].graph) == 1
        assert len(seq[1].graph) == 2


class TestAdaptiveIndexer:
    def batch(self, n=100):
        return [(float(i), i % 10, float(i)) for i in range(n)]

    def test_scan_until_threshold(self):
        idx = AdaptiveIndexer(probe_threshold=3, min_batch_size=10)
        rows = self.batch()
        for _ in range(2):
            idx.probe("b0", rows, 1, 3)
        assert idx.stats.indexes_built == 0
        idx.probe("b0", rows, 1, 3)
        assert idx.stats.indexes_built == 1
        result = idx.probe("b0", rows, 1, 3)
        assert len(result) == 10
        assert idx.stats.index_probes >= 2

    def test_results_identical_with_and_without_index(self):
        rows = self.batch()
        indexed = AdaptiveIndexer(probe_threshold=1, min_batch_size=1)
        plain = AdaptiveIndexer(enabled=False)
        for value in range(10):
            assert indexed.probe("b", rows, 1, value) == plain.probe(
                "b", rows, 1, value
            )

    def test_small_batches_never_indexed(self):
        idx = AdaptiveIndexer(probe_threshold=1, min_batch_size=1000)
        rows = self.batch(50)
        for _ in range(10):
            idx.probe("b", rows, 1, 1)
        assert idx.stats.indexes_built == 0

    def test_disabled_never_indexes(self):
        idx = AdaptiveIndexer(enabled=False)
        rows = self.batch()
        for _ in range(10):
            idx.probe("b", rows, 1, 1)
        assert idx.index_count == 0

    def test_drop_batch(self):
        idx = AdaptiveIndexer(probe_threshold=1, min_batch_size=1)
        rows = self.batch()
        idx.probe("b", rows, 1, 1)
        assert idx.index_count == 1
        idx.drop_batch("b")
        assert idx.index_count == 0

    def test_separate_columns_indexed_separately(self):
        idx = AdaptiveIndexer(probe_threshold=1, min_batch_size=1)
        rows = self.batch()
        idx.probe("b", rows, 1, 1)
        idx.probe("b", rows, 2, 5.0)
        assert idx.index_count == 2


class TestLSH:
    def test_exact_pearson(self):
        a = [1, 2, 3, 4]
        assert exact_pearson(a, a) == pytest.approx(1.0)
        assert exact_pearson(a, [4, 3, 2, 1]) == pytest.approx(-1.0)
        assert exact_pearson(a, [0, 0, 0, 0]) == 0.0

    def test_exact_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_pearson([1, 2], [1, 2, 3])

    def test_estimate_close_to_exact(self):
        rng = np.random.default_rng(0)
        n = 128
        base = rng.standard_normal(n)
        noisy = base + 0.3 * rng.standard_normal(n)
        anti = -base + 0.3 * rng.standard_normal(n)
        lsh = LSHCorrelator(n, num_bits=2048, bands=64, seed=1)
        s_base = lsh.signature("base", base)
        s_noisy = lsh.signature("noisy", noisy)
        s_anti = lsh.signature("anti", anti)
        assert lsh.estimate_correlation(s_base, s_noisy) == pytest.approx(
            exact_pearson(base, noisy), abs=0.12
        )
        assert lsh.estimate_correlation(s_base, s_anti) < -0.7

    def test_identical_signature_full_correlation(self):
        lsh = LSHCorrelator(16, num_bits=64, bands=8)
        s = lsh.signature("a", list(range(16)))
        assert lsh.estimate_correlation(s, s) == pytest.approx(1.0)

    def test_candidate_pairs_find_correlated(self):
        rng = np.random.default_rng(2)
        n = 64
        base = rng.standard_normal(n)
        vectors = {"a": base, "b": base + 0.05 * rng.standard_normal(n)}
        for k in range(10):
            vectors[f"noise{k}"] = rng.standard_normal(n)
        lsh = LSHCorrelator(n, num_bits=256, bands=32, seed=3)
        sigs = [lsh.signature(k, v) for k, v in vectors.items()]
        found = lsh.find_correlated(sigs, threshold=0.8)
        assert ("a", "b", pytest.approx(1.0, abs=0.2)) in [
            (p[0], p[1], p[2]) for p in found
        ] or any(p[:2] == ("a", "b") for p in found)

    def test_bits_band_divisibility(self):
        with pytest.raises(ValueError):
            LSHCorrelator(8, num_bits=10, bands=3)

    def test_vector_length_enforced(self):
        lsh = LSHCorrelator(8)
        with pytest.raises(ValueError):
            lsh.signature("a", list(range(9)))
