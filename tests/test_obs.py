"""The observability layer: registry, tracing, exporters, monitoring.

Covers the PR-9 acceptance criteria:

* byte-identical engine output with tracing on vs off over the full
  Siemens catalog, shards 1 and 2;
* histogram/counter merge correctness across shards and fork workers
  (wall clocks and window counters as max, work counters as sums);
* Prometheus and JSONL exporters round-tripping through golden files;
* span-tree invariants under ``REPRO_AUDIT=1``;
* ``scheduler.load_report()`` as the read API over placement state.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from cqgen import build_engine, measurement_rows
from repro.exastream import GatewayServer, Scheduler
from repro.exastream.metrics import EngineMetrics, QueryMetrics
from repro.exastream.sharded import fork_available
from repro.obs import (
    CollectingExporter,
    Counter,
    Histogram,
    JsonlExporter,
    MetricRegistry,
    MetricsReport,
    Monitor,
    Observability,
    Span,
    Tracer,
    parse_prometheus,
    read_spans,
    render_query_table,
    to_prometheus,
    trace_summary,
    tracer_from_env,
)
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet

GOLDEN = Path(__file__).parent / "golden"

SQL = (
    "SELECT w.sid AS s, AVG(w.val) AS m, COUNT(*) AS n "
    "FROM timeSlidingWindow(S, 20, 5) AS w, sensors AS t "
    "WHERE w.sid = t.sid AND t.kind = 'temp' GROUP BY w.sid"
)


def canonical(results):
    return [
        (r.query, r.window_id, r.window_end, tuple(r.columns),
         tuple(tuple(row) for row in r.rows))
        for r in results
    ]


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(FleetConfig(turbines=4, plants=2, correlated_pairs=2))


# ---------------------------------------------------------------------------
# registry units


class TestRegistry:
    def test_counter_modes_and_values(self):
        registry = MetricRegistry()
        c = registry.counter("hits", query="q")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert registry.counter("hits", query="q") is c  # get-or-create
        with pytest.raises(ValueError):
            Counter("bad", (), mode="median")

    def test_gauge_and_histogram(self):
        registry = MetricRegistry()
        g = registry.gauge("depth")
        g.set(7)
        assert g.value == 7
        h = registry.histogram("lat", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 5
        assert h.counts == [1, 2, 1, 1]
        assert h.min == 0.05 and h.max == 50.0
        assert h.mean == pytest.approx(56.05 / 5)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 50.0  # tail bucket reports the true max
        assert Histogram("empty", (), (1.0,)).quantile(0.5) == 0.0

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            MetricRegistry().histogram("h", bounds=(1.0, 1.0, 2.0))

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_labels_are_order_insensitive(self):
        registry = MetricRegistry()
        a = registry.counter("c", query="q", operator="f")
        b = registry.counter("c", operator="f", query="q")
        assert a is b


class TestSnapshotMerge:
    def _registry(self, wall, tuples):
        registry = MetricRegistry()
        registry.counter("query_wall_seconds", mode="max", query="q").inc(wall)
        registry.counter("query_tuples_in_total", query="q").inc(tuples)
        h = registry.histogram("lat", bounds=(1.0, 10.0), query="q")
        h.observe(wall)
        return registry

    def test_sum_and_max_modes(self):
        merged = self._registry(2.0, 100).snapshot().merge(
            self._registry(3.0, 50).snapshot()
        )
        # wall is max (the shards ran concurrently), work sums
        assert merged.value("query_wall_seconds", query="q") == 3.0
        assert merged.value("query_tuples_in_total", query="q") == 150
        h = merged.histogram("lat", query="q")
        assert h.count == 2 and h.min == 2.0 and h.max == 3.0

    def test_merge_is_symmetric_and_pickles(self):
        a, b = self._registry(2.0, 100).snapshot(), self._registry(3.0, 50).snapshot()
        assert a.merge(b) == b.merge(a)
        restored = pickle.loads(pickle.dumps(a.merge(b)))
        assert restored == a.merge(b)

    def test_conflicting_series_kinds_refuse_to_merge(self):
        a = MetricRegistry()
        a.counter("x")
        b = MetricRegistry()
        b.gauge("x")
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())

    def test_histogram_bounds_mismatch_refuses(self):
        a = MetricRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b = MetricRegistry()
        b.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())

    def test_total_and_labels_for(self):
        registry = MetricRegistry()
        registry.counter("c", query="a").inc(1)
        registry.counter("c", query="b").inc(2)
        snapshot = registry.snapshot()
        assert snapshot.total("c") == 3
        assert snapshot.labels_for("c") == [
            (("query", "a"),), (("query", "b"),)
        ]
        assert snapshot.value("c", query="missing") is None


class TestWallSecondsRegression:
    """Satellite: per-shard wall times must merge as max, never sum."""

    def test_query_metrics_merge(self):
        a, b = QueryMetrics("q"), QueryMetrics("q")
        a.wall_seconds, b.wall_seconds = 2.0, 3.0
        a.tuples_in, b.tuples_in = 100, 50
        a.windows_processed, b.windows_processed = 10, 10
        a.merge(b)
        assert a.wall_seconds == 3.0  # max: the shards overlapped
        assert a.tuples_in == 150  # work still sums
        assert a.windows_processed == 10  # same window ids, not 20
        assert a.throughput == pytest.approx(150 / 3.0)

    def test_engine_metrics_merge(self):
        a, b = EngineMetrics(), EngineMetrics()
        a.wall_seconds, b.wall_seconds = 2.0, 3.0
        a.query("q").tuples_in = 10
        b.query("q").tuples_in = 20
        a.merge(b)
        assert a.wall_seconds == 3.0
        assert a.query("q").tuples_in == 30
        assert a.throughput == pytest.approx(30 / 3.0)


# ---------------------------------------------------------------------------
# tracer units


class TestTracer:
    def test_disabled_tracer_is_noop(self):
        tracer = Tracer()
        handle = tracer.span("window", "q")
        assert handle is tracer.span("other")  # the shared no-op object
        with handle as span:
            assert span is None
        assert tracer.spans_opened == 0

    def test_parenting_and_query_inheritance(self):
        exporter = CollectingExporter()
        tracer = Tracer(exporter, enabled=True)
        with tracer.span("pulse", "q") as pulse:
            with tracer.span("window") as window:
                assert window.parent_id == pulse.span_id
                assert window.trace_id == pulse.trace_id
                assert window.query == "q"
        # children export before parents
        assert [s.name for s in exporter.spans] == ["window", "pulse"]
        assert tracer.audit_violations() == []

    def test_audit_catches_unclosed_and_unattributed(self):
        tracer = Tracer(CollectingExporter(), enabled=True)
        tracer.span("pulse", "q").__enter__()  # never closed
        assert any("still open" in v for v in tracer.audit_violations())
        tracer2 = Tracer(CollectingExporter(), enabled=True)
        with tracer2.span("orphan"):  # root without a query
            pass
        assert any(
            "no query attribution" in v for v in tracer2.audit_violations()
        )

    def test_enable_requires_exporter(self):
        with pytest.raises(ValueError):
            Tracer().enable()

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlExporter(path), enabled=True)
        with tracer.span("pulse", "q", window=3):
            with tracer.span("window"):
                pass
        tracer.close()
        spans = read_spans(path)
        assert [s.name for s in spans] == ["window", "pulse"]
        assert spans[1].attrs == {"window": 3}
        assert all(s.end is not None for s in spans)

    def test_tracer_from_env(self, tmp_path):
        assert tracer_from_env({}).enabled is False
        path = str(tmp_path / "t.jsonl")
        tracer = tracer_from_env({"REPRO_TRACE": path})
        assert tracer.enabled and tracer.exporter.path == path

    def test_observability_bundle(self):
        obs = Observability(enabled=False)
        assert obs.tracer.enabled is False
        shard = obs.shard_view(1)
        assert shard.registry is not obs.registry
        assert shard.tracer is obs.tracer
        assert shard.attrs == {"shard": 1}
        forked = obs.forked()
        assert forked.registry is not obs.registry  # post-fork delta only
        assert forked.tracer.enabled is False


# ---------------------------------------------------------------------------
# exporter golden files


def _golden_registry() -> MetricRegistry:
    registry = MetricRegistry()
    registry.counter("query_tuples_in_total", query="temp").inc(1234)
    registry.counter("query_tuples_in_total", query="vibration").inc(56)
    registry.counter("query_wall_seconds", mode="max", query="temp").inc(1.5)
    registry.gauge("scheduler_balance").set(1.25)
    h = registry.histogram(
        "window_latency_seconds", bounds=(0.001, 0.01, 0.1), query="temp"
    )
    for value in (0.0005, 0.002, 0.002, 0.05, 2.0):
        h.observe(value)
    return registry


class TestPrometheusExporter:
    def test_matches_golden_file(self):
        text = to_prometheus(_golden_registry().snapshot())
        assert text == (GOLDEN / "registry.prom").read_text()

    def test_round_trip_is_identity(self):
        text = to_prometheus(_golden_registry().snapshot())
        assert to_prometheus(parse_prometheus(text)) == text

    def test_parse_back_values(self):
        snapshot = parse_prometheus(
            to_prometheus(_golden_registry().snapshot())
        )
        assert snapshot.value("query_tuples_in_total", query="temp") == 1234
        assert snapshot.value("scheduler_balance") == 1.25
        h = snapshot.histogram("window_latency_seconds", query="temp")
        assert h.count == 5
        assert h.counts == [1, 2, 1, 1]
        assert h.sum == pytest.approx(2.0545)

    def test_label_escaping_round_trips(self):
        registry = MetricRegistry()
        registry.counter("c", query='we"ird\\na\nme').inc(3)
        text = to_prometheus(registry.snapshot())
        assert parse_prometheus(text).value(
            "c", query='we"ird\\na\nme'
        ) == 3


class TestTraceGolden:
    def _trace(self) -> list[Span]:
        clock_state = {"now": 0.0}

        def clock() -> float:
            clock_state["now"] += 0.25
            return clock_state["now"]

        exporter = CollectingExporter()
        tracer = Tracer(exporter, enabled=True, clock=clock)
        with tracer.span("pulse", "temp", window=0):
            with tracer.span("window", path="recompute"):
                pass
            with tracer.span("deliver"):
                pass
        return exporter.spans

    def test_matches_golden_file(self):
        import json

        lines = [
            json.dumps(span.to_dict(), sort_keys=True)
            for span in self._trace()
        ]
        golden = (GOLDEN / "trace.jsonl").read_text().splitlines()
        assert lines == golden

    def test_summary_over_golden_spans(self):
        summary = trace_summary(self._trace())
        assert summary["temp"]["pulses"] == 1
        assert summary["temp"]["total_seconds"] == pytest.approx(1.25)
        assert summary["temp"]["by_span"]["window"] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# engine integration: snapshots, shard merge, fork workers


def _run_query(shards=1, sql=SQL, **engine_kwargs):
    engine = build_engine(
        measurement_rows(80, 6), shards=shards, **engine_kwargs
    )
    gateway = GatewayServer(engine)
    registered = gateway.register(sql, name="q", sink_capacity=None)
    while gateway.step():
        pass
    results = canonical(registered.results())
    snapshot = gateway.metrics_snapshot()
    gateway.deregister("q")
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return results, snapshot


class TestEngineSnapshots:
    def test_single_node_snapshot_matches_metrics(self):
        engine = build_engine(measurement_rows(80, 6))
        gateway = GatewayServer(engine)
        gateway.register(SQL, name="q", sink_capacity=None)
        while gateway.step():
            pass
        snapshot = gateway.metrics_snapshot()
        metrics = engine.metrics.query("q")
        assert snapshot.value(
            "query_tuples_in_total", query="q"
        ) == metrics.tuples_in > 0
        assert snapshot.value(
            "query_windows_total", query="q"
        ) == metrics.windows_processed > 0
        latency = snapshot.histogram("window_latency_seconds", query="q")
        assert latency.count == metrics.windows_processed

    def test_per_operator_stats_recorded(self):
        # recompute path with a stream-side filter: every stage records
        sql = SQL.replace("WHERE ", "WHERE w.val > 50 AND ")
        _, snapshot = _run_query(incremental=False, sql=sql)
        operators = {
            dict(labels)["operator"]
            for (series, labels) in snapshot.series
            if series == "operator_rows_in_total"
        }
        assert "filter:w" in operators
        assert "aggregate" in operators
        join_ops = [op for op in operators if op.startswith("join:")]
        assert join_ops
        for op in operators:
            rows_in = snapshot.value(
                "operator_rows_in_total", query="q", operator=op
            )
            rows_out = snapshot.value(
                "operator_rows_out_total", query="q", operator=op
            )
            assert rows_in >= 0 and rows_out >= 0

    def test_shard_merge_counts_each_window_once(self):
        single, single_snap = _run_query(shards=1)
        sharded, sharded_snap = _run_query(shards=2)
        assert sharded == single  # the execution differential
        for series in ("query_windows_total", "query_tuples_in_total",
                       "query_tuples_out_total"):
            assert sharded_snap.value(series, query="q") == \
                single_snap.value(series, query="q")
        # every shard contributes its own latency observations
        assert sharded_snap.histogram(
            "window_latency_seconds", query="q"
        ).count == 2 * single_snap.value("query_windows_total", query="q")

    @pytest.mark.skipif(not fork_available(), reason="fork start method")
    def test_fork_workers_ship_snapshot_deltas(self):
        single, single_snap = _run_query(shards=1)
        forked, forked_snap = _run_query(shards=2, parallel="fork")
        assert forked == single
        for series in ("query_windows_total", "query_tuples_in_total"):
            assert forked_snap.value(series, query="q") == \
                single_snap.value(series, query="q")

    def test_disabled_bundle_skips_detailed_series(self):
        engine = build_engine(
            measurement_rows(40, 4), obs=Observability(enabled=False)
        )
        gateway = GatewayServer(engine)
        gateway.register(SQL, name="q", sink_capacity=None)
        while gateway.step():
            pass
        snapshot = gateway.metrics_snapshot()
        # core counters stay on; histograms and per-operator stats are off
        assert snapshot.value("query_tuples_in_total", query="q") > 0
        assert snapshot.histogram("window_latency_seconds", query="q") is None
        assert not any(
            series == "operator_rows_in_total"
            for (series, _) in snapshot.series
        )

    def test_checkpoint_flush_histogram(self, tmp_path):
        from repro.exastream.durability import CheckpointManager

        engine = build_engine(measurement_rows(40, 4))
        gateway = GatewayServer(engine)
        CheckpointManager(gateway, tmp_path, interval=2)
        gateway.register(SQL, name="q", sink_capacity=None)
        while gateway.step():
            pass
        h = gateway.metrics_snapshot().histogram("checkpoint_flush_seconds")
        assert h is not None and h.count > 0

    def test_bus_delivery_histogram(self):
        engine = build_engine(measurement_rows(40, 4))
        gateway = GatewayServer(engine)
        gateway.register(SQL, name="q", sink_capacity=None)
        while gateway.step():
            pass
        h = gateway.metrics_snapshot().histogram(
            "bus_delivery_seconds", query="q"
        )
        assert h is not None and h.count > 0


class TestSchedulerReport:
    def test_load_report_over_placements(self):
        engine = build_engine(measurement_rows(40, 4))
        scheduler = Scheduler(3)
        gateway = GatewayServer(engine, scheduler=scheduler)
        gateway.register(SQL, name="q", sink_capacity=None)
        gateway.step(4)
        report = scheduler.load_report()
        assert len(report.workers) == 3
        assert report.query_costs.keys() >= {"q"}
        assert report.placements_of("q")
        assert all(
            placement[0] == "q" for placement in report.placements_of("q")
        )
        assert report.balance >= 1.0
        assert len(report.loads) == 3
        # the report is a snapshot, not a live view
        frozen = report.query_costs["q"]
        gateway.step(4)
        assert report.query_costs["q"] == frozen

    def test_scheduler_gauges_in_snapshot(self):
        engine = build_engine(measurement_rows(40, 4))
        gateway = GatewayServer(engine, scheduler=Scheduler(2))
        gateway.register(SQL, name="q", sink_capacity=None)
        gateway.step(4)
        snapshot = gateway.metrics_snapshot()
        assert snapshot.value("scheduler_balance") >= 1.0
        assert len(snapshot.labels_for("scheduler_worker_load")) == 2


# ---------------------------------------------------------------------------
# the monitoring surface


class TestMonitorSurface:
    def test_monitor_requires_snapshot_source(self):
        with pytest.raises(TypeError):
            Monitor(object())

    def test_report_and_table(self):
        _, snapshot = _run_query()
        report = MetricsReport(snapshot)
        assert report.queries == ["q"]
        stats = report.query("q")
        assert stats["windows"] > 0 and stats["throughput"] > 0
        table = report.render()
        assert "q" in table and "tup/s" in table and "bus:" in table
        assert render_query_table(snapshot) == table
        assert "query_tuples_in_total" in report.to_prometheus()

    def test_session_metrics_and_handle_stats(self, small_fleet):
        deployment = deploy(fleet=small_fleet, stream_duration=20)
        session = deployment.session(sink_capacity=None)
        handle = session.submit(
            diagnostic_catalog()[0].starql, name="monotonic"
        )
        while session.step(4):
            pass
        report = session.metrics()
        assert "monotonic" in report.queries
        stats = handle.stats()
        assert stats["windows"] == handle.windows_executed > 0
        monitor = Monitor(deployment)
        assert "monotonic" in monitor.render()
        session.close()

    def test_explain_surfaces_observed_operator_stats(self, small_fleet):
        deployment = deploy(fleet=small_fleet, stream_duration=20)
        session = deployment.session(sink_capacity=None)
        task = diagnostic_catalog()[0]
        session.submit(task.starql, name="monotonic")
        while session.step(4):
            pass
        report = session.explain(task.starql, name="monotonic")
        observed = [d for d in report.infos if d.code == "ANA040"]
        assert observed
        assert any("selectivity" in d.message for d in observed)
        session.close()

    def test_cli_trace_mode(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlExporter(path), enabled=True)
        with tracer.span("pulse", "q"):
            with tracer.span("window"):
                pass
        tracer.close()
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "q" in out and "pulses" in out
        assert main([str(tmp_path / "missing.jsonl")]) == 2


# ---------------------------------------------------------------------------
# the acceptance differential: tracing on vs off, byte-identical output


class TestTracingDifferential:
    def _run_catalog(self, fleet, shards, trace):
        deployment = deploy(fleet=fleet, stream_duration=20, shards=shards)
        exporter = CollectingExporter()
        if trace:
            deployment.engine.obs.tracer.enable(exporter)
        session = deployment.session(sink_capacity=None)
        handles = {}
        for index, task in enumerate(diagnostic_catalog()):
            name = f"task{index:02d}"
            handles[name] = session.submit(task.starql, name=name)
        while deployment.step():
            pass
        results = {
            name: canonical(handle.registered.results())
            for name, handle in handles.items()
        }
        tracer = deployment.engine.obs.tracer
        session.close()
        return results, exporter.spans, tracer

    @pytest.mark.parametrize("shards", [1, 2])
    def test_catalog_byte_identical_with_tracing(self, small_fleet, shards):
        baseline, _, _ = self._run_catalog(small_fleet, shards, trace=False)
        traced, spans, tracer = self._run_catalog(
            small_fleet, shards, trace=True
        )
        assert traced == baseline  # tracing only observes
        assert any(len(results) > 0 for results in baseline.values())
        assert spans
        # span-tree invariants: closed, parented, attributed
        assert tracer.audit_violations() == []
        ids = {span.span_id for span in spans}
        names = {f"task{i:02d}" for i in range(len(diagnostic_catalog()))}
        for span in spans:
            assert span.end is not None
            assert span.parent_id is None or span.parent_id in ids
            assert span.query in names
        roots = [span for span in spans if span.parent_id is None]
        assert roots and all(span.name == "pulse" for span in roots)
        if shards == 2:
            assert any(span.attrs.get("shard") is not None for span in spans)

    def test_audit_mode_verifies_span_balance(self, small_fleet, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        results, spans, tracer = self._run_catalog(
            small_fleet, shards=1, trace=True
        )
        # deploy + full drain under REPRO_AUDIT ran verify_gateway at
        # every quiescent point with the tracer audit wired in
        assert spans and tracer.audit_violations() == []
