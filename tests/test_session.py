"""Tests for the session-based query lifecycle: bounded sinks, the
cooperative step() executor, handle lifecycle, prepared-query caching and
shared-reader release on deregister."""

import pytest

# These modules predate (and deliberately cover) the deprecated batch
# wrappers -- run(max_windows=/on_result=/keep_results=) compat stays
# tested without warning noise in tier-1 output.
pytestmark = pytest.mark.filterwarnings(
    r"ignore:.*run\(\) is deprecated:DeprecationWarning"
)


from repro.exastream import (
    BoundedResultSink,
    GatewayServer,
    QueryState,
    StreamEngine,
)
from repro.relational import Column, SQLType
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet
from repro.streams import ListSource, Stream, StreamSchema


def measurement_stream(rows, name="S_Msmt"):
    schema = StreamSchema(
        (
            Column("ts", SQLType.REAL),
            Column("sid", SQLType.INTEGER),
            Column("val", SQLType.REAL),
        ),
        time_column="ts",
    )
    return ListSource(Stream(name, schema), rows)


def engine_with_data(n_seconds=12):
    rows = []
    for t in range(n_seconds):
        rows.append((float(t), 1, 50.0 + t))
        rows.append((float(t), 2, 60.0 - (t % 3)))
    engine = StreamEngine()
    engine.register_stream(measurement_stream(rows))
    return engine


SQL = (
    "SELECT w.sid AS s, AVG(w.val) AS m "
    "FROM timeSlidingWindow(S_Msmt, 2, 2) AS w GROUP BY w.sid"
)


class TestBoundedResultSink:
    def test_unbounded_by_default(self):
        sink = BoundedResultSink()
        for i in range(100):
            assert sink.offer(i)
        assert len(sink) == 100
        assert sink.dropped == 0

    def test_drop_oldest_keeps_most_recent(self):
        sink = BoundedResultSink(capacity=3)
        for i in range(10):
            assert sink.offer(i)
        assert sink.snapshot() == [7, 8, 9]
        assert sink.dropped == 7
        assert sink.accepted == 10

    def test_block_refuses_when_full(self):
        sink = BoundedResultSink(capacity=2, policy=BoundedResultSink.BLOCK)
        assert sink.offer(1) and sink.offer(2)
        assert sink.would_block()
        assert not sink.offer(3)
        assert sink.snapshot() == [1, 2]
        sink.poll(1)
        assert not sink.would_block()
        assert sink.offer(3)

    def test_poll_is_incremental_and_fifo(self):
        sink = BoundedResultSink(capacity=5)
        for i in range(5):
            sink.offer(i)
        assert sink.poll(2) == [0, 1]
        assert sink.poll(2) == [2, 3]
        assert sink.poll() == [4]
        assert sink.poll() == []

    def test_capacity_zero_discards_all(self):
        sink = BoundedResultSink(capacity=0)
        assert sink.offer(1)
        assert len(sink) == 0
        assert sink.dropped == 1

    def test_limit_tightens_never_loosens(self):
        sink = BoundedResultSink()
        for i in range(10):
            sink.offer(i)
        sink.limit(4)
        assert sink.snapshot() == [6, 7, 8, 9]
        assert sink.dropped == 6
        sink.limit(8)  # no-op: never loosens
        assert sink.capacity == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedResultSink(capacity=-1)
        with pytest.raises(ValueError):
            BoundedResultSink(policy="teleport")


class TestGatewayStep:
    def test_step_round_robin_interleaves(self):
        gateway = GatewayServer(engine_with_data())
        a = gateway.register(SQL, name="a")
        b = gateway.register(SQL, name="b")
        gateway.step(3)
        assert a.next_window == 3
        assert b.next_window == 3

    def test_step_is_reentrant_and_matches_run(self):
        stepped = GatewayServer(engine_with_data())
        q1 = stepped.register(SQL, name="q")
        total = 0
        while True:
            n = stepped.step(2)
            if n == 0:
                break
            total += n
        ran = GatewayServer(engine_with_data())
        q2 = ran.register(SQL, name="q")
        with pytest.warns(DeprecationWarning):
            ran.run()
        assert total == q1.next_window == q2.next_window
        assert [r.rows for r in q1.results()] == [r.rows for r in q2.results()]

    def test_lifecycle_pause_resume_cancel(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q")
        other = gateway.register(SQL, name="other")
        assert q.state is QueryState.REGISTERED
        gateway.step()
        assert q.state is QueryState.RUNNING
        q.pause()
        gateway.step(2)
        assert q.state is QueryState.PAUSED
        assert q.next_window == 1  # paused: no progress
        assert other.next_window == 3  # others unaffected
        q.resume()
        gateway.step()
        assert q.state is QueryState.RUNNING
        assert q.next_window == 2
        q.cancel()
        gateway.step(3)
        assert q.state is QueryState.CANCELLED
        assert q.next_window == 2

    def test_terminal_states_reject_pause_resume(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q")
        q.cancel()
        with pytest.raises(ValueError):
            q.pause()
        with pytest.raises(ValueError):
            q.resume()
        q.cancel()  # idempotent

    def test_completed_at_stream_end(self):
        gateway = GatewayServer(engine_with_data(n_seconds=6))
        q = gateway.register(SQL, name="q")
        while gateway.step():
            pass
        assert q.state is QueryState.COMPLETED

    def test_window_limit_completes_query(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q", window_limit=2)
        while gateway.step():
            pass
        assert q.state is QueryState.COMPLETED
        assert q.next_window == 2

    def test_window_limit_completes_immediately(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q", window_limit=3)
        gateway.step(3)
        # status is accurate the moment the last window executed, not
        # one step() visit later
        assert q.state is QueryState.COMPLETED

    def test_subscribe_same_callback_idempotent(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q")
        seen = []

        def callback(result):
            seen.append(result.window_id)

        q.subscribe(callback)
        q.subscribe(callback)
        gateway.step(2)
        assert seen == [0, 1]  # delivered once despite double subscribe

    def test_block_policy_backpressures_producer(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(
            SQL, name="q", sink_capacity=2,
            sink_policy=BoundedResultSink.BLOCK,
        )
        other = gateway.register(SQL, name="other")
        gateway.step(4)
        assert q.next_window == 2  # stalled when the sink filled
        assert other.next_window == 4  # unaffected by q's back-pressure
        assert q.state is QueryState.RUNNING  # not terminal, just waiting
        assert len(q.poll(1)) == 1
        gateway.step(1)
        assert q.next_window == 3  # resumed after the consumer drained

    def test_drop_oldest_bounds_memory(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q", sink_capacity=3)
        while gateway.step():
            pass
        assert len(q.sink) == 3
        assert q.sink.dropped == q.next_window - 3
        retained = [r.window_id for r in q.results()]
        assert retained == list(range(q.next_window - 3, q.next_window))

    def test_subscribe_replaces_global_hook(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q")
        gateway.register(SQL, name="other")
        seen = []
        q.subscribe(lambda r: seen.append(r.window_id))
        gateway.step(3)
        assert seen == [0, 1, 2]  # only q's results, incrementally

    def test_keep_results_false_retains_bounded_tail(self):
        gateway = GatewayServer(engine_with_data(n_seconds=30))
        q = gateway.register(SQL, name="q")
        with pytest.warns(DeprecationWarning):
            gateway.run(keep_results=False)
        assert q.next_window > GatewayServer.UNKEPT_SINK_CAPACITY
        results = q.results()
        assert 0 < len(results) <= GatewayServer.UNKEPT_SINK_CAPACITY
        assert q.sink.dropped > 0  # the degradation is observable
        assert results[-1].window_id == q.next_window - 1

    def test_deregister_unknown_name_raises(self):
        gateway = GatewayServer(engine_with_data())
        with pytest.raises(KeyError):
            gateway.deregister("ghost")

    def test_deregister_releases_shared_readers_on_last_query(self):
        gateway = GatewayServer(engine_with_data())
        gateway.register(SQL, name="a")
        gateway.register(SQL, name="b")
        assert gateway.shared_reader_count == 1  # same stream + grid shared
        gateway.deregister("a")
        assert gateway.shared_reader_count == 1  # b still reads it
        gateway.deregister("b")
        assert gateway.shared_reader_count == 0  # last reference released

    def test_auto_names_deduplicate(self):
        gateway = GatewayServer(engine_with_data())
        from repro.exastream import plan_sql

        plan = plan_sql(SQL, gateway.engine, name="shared")
        from dataclasses import replace

        first = gateway.register(replace(plan))
        second = gateway.register(replace(plan))
        assert first.name == "shared"
        assert second.name != "shared"
        with pytest.raises(ValueError):
            gateway.register(replace(plan), name="shared")


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(FleetConfig(turbines=4, plants=2, correlated_pairs=2))


@pytest.fixture()
def deployment(small_fleet):
    return deploy(fleet=small_fleet, stream_duration=25)


class TestSessionAPI:
    def test_prepare_caches_translations(self, deployment):
        session = deployment.session()
        text = diagnostic_catalog()[0].starql
        first = session.prepare(text)
        second = session.prepare("\n  " + "  ".join(text.split()) + " \n")
        assert first.translation is second.translation
        assert deployment.translator.cache_misses == 1
        assert deployment.translator.cache_hits == 1

    def test_normalize_preserves_string_literals(self, deployment):
        normalize = deployment.translator.normalize_text
        # whitespace outside literals is insignificant...
        assert normalize('A  B  "x y"  C') == normalize('A B "x y" C')
        # ...but whitespace inside a quoted literal is significant
        assert normalize('START = "10:00:00 CET"') != normalize(
            'START = "10:00:00  CET"'
        )

    def test_cache_shared_across_sessions(self, deployment):
        text = diagnostic_catalog()[0].starql
        deployment.session().prepare(text)
        deployment.session().prepare(text)
        assert deployment.translator.cache_misses == 1
        assert deployment.translator.cache_hits == 1

    def test_submit_same_prepared_twice(self, deployment):
        session = deployment.session()
        prepared = session.prepare(diagnostic_catalog()[0].starql)
        h1 = session.submit(prepared, max_windows=4)
        h2 = session.submit(prepared, max_windows=4)
        assert h1.name != h2.name
        while session.step():
            pass
        assert h1.windows_executed == h2.windows_executed == 4
        assert h1.state is QueryState.COMPLETED

    def test_poll_bounded_and_incremental(self, deployment):
        session = deployment.session(sink_capacity=4)
        handle = session.submit(diagnostic_catalog()[0].starql, name="fig1")
        polled = 0
        while session.step(3):
            assert len(handle.sink) <= 4  # memory bounded while running
            polled += len(handle.poll(max_results=2))
            assert polled <= handle.windows_executed
        polled += len(handle.poll())
        assert polled > 0
        assert handle.windows_executed > 4  # more windows ran than the cap

    def test_two_sessions_interleave(self, deployment):
        s1 = deployment.session(name="tenant1")
        s2 = deployment.session(name="tenant2")
        h1 = s1.submit(diagnostic_catalog()[0].starql, name="t1q")
        h2 = s2.submit(diagnostic_catalog()[1].starql, name="t2q")
        for _ in range(5):
            s1.step()  # either session's step advances both, round-robin
            assert abs(h1.windows_executed - h2.windows_executed) <= 1
        s2.step()
        assert h1.windows_executed >= 5
        assert h2.windows_executed >= 5

    def test_handle_lifecycle_and_alerts(self, deployment):
        session = deployment.session()
        handle = session.submit(diagnostic_catalog()[0].starql, name="life")
        session.step(2)
        handle.pause()
        assert handle.state is QueryState.PAUSED
        session.step(2)
        assert handle.windows_executed == 2
        handle.resume()
        session.step(8)
        assert handle.windows_executed == 10
        alerts = handle.alerts()
        assert isinstance(alerts, list)
        handle.cancel()
        assert handle.state is QueryState.CANCELLED

    def test_subscribe_callback(self, deployment):
        session = deployment.session()
        handle = session.submit(diagnostic_catalog()[0].starql, name="sub")
        seen = []
        handle.subscribe(lambda r: seen.append(r.window_id))
        session.step(3)
        assert seen == [0, 1, 2]

    def test_close_deregisters_handles(self, deployment):
        with deployment.session() as session:
            handle = session.submit(diagnostic_catalog()[0].starql, name="tmp")
            assert "tmp" in deployment.gateway
        assert "tmp" not in deployment.gateway
        assert handle.state is QueryState.CANCELLED


class TestPlatformSessionFacade:
    def test_platform_session_updates_dashboard(self, small_fleet):
        from repro.optique import OptiquePlatform
        from repro.siemens import build_siemens_mappings, build_siemens_ontology
        from repro.siemens.deployment import FAILURE_MACRO, MONOTONIC_MACRO

        platform = OptiquePlatform(
            ontology=build_siemens_ontology(),
            mappings=build_siemens_mappings(),
        )
        platform.attach_database("plant", small_fleet.plant_db)
        platform.register_stream(
            small_fleet.measurement_source(
                small_fleet.sensor_ids[:8] + small_fleet.ramp_sensors[:1],
                duration_seconds=20,
            )
        )
        platform.register_macro(MONOTONIC_MACRO)
        platform.register_macro(FAILURE_MACRO)

        session = platform.session(sink_capacity=8)
        handle = session.submit(
            diagnostic_catalog()[0].starql, name="fig1", max_windows=18
        )
        while platform.step(4):
            pass
        assert handle.state is QueryState.COMPLETED
        # the dashboard observed every window through the handle subscriber
        assert platform.dashboard.panel("fig1").windows_seen == 18
        # ...while the sink retained only its bounded tail
        assert len(handle.sink) <= 8
