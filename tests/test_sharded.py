"""Shard-boundary semantics: partition analysis, N-shard determinism,
merge operators, the shard-assignment scheduler and worker processes."""

import pytest

import cqgen
from repro.exastream import (
    GatewayServer,
    PartitionMode,
    Scheduler,
    ShardedEngine,
    StreamEngine,
    plan_sql,
    stable_hash,
)
from repro.exastream.sharded import fork_available
from repro.relational import Column, SQLType
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet
from repro.streams import Heartbeat, ListSource, Stream, StreamSchema, WindowSpec
from repro.streams import time_sliding_window

SCHEMA = cqgen.SCHEMA


def measurement_rows(n_seconds=40, n_sensors=12, gap_sensor=None, gap_after=10):
    """This suite's workload shape (12 sensors, trailing per-sensor gap,
    integer-valued floats) over the shared generator.

    ``fraction=0.0`` matters: PARTIAL-mode merges re-add shard sums, so
    bitwise shard-count invariance needs addition-order-insensitive
    values."""
    return cqgen.measurement_rows(
        n_seconds, n_sensors, gap_sensor=gap_sensor,
        gap=(gap_after + 1, n_seconds), fraction=0.0,
    )


def engine_with(rows, cls=StreamEngine, **kwargs):
    shards = kwargs.pop("shards", None)
    if cls is ShardedEngine:
        return cqgen.build_engine(
            rows, shards=shards if shards is not None else 2,
            attach_static=False, **kwargs,
        )
    assert not kwargs, kwargs
    return cqgen.build_engine(rows, attach_static=False)


def run_gateway(engine, sql, **register_kwargs):
    gateway = GatewayServer(engine)
    query = gateway.register(sql, name="q", **register_kwargs)
    while gateway.step():
        pass
    results = [
        (r.window_id, r.window_end, r.columns, r.rows) for r in query.results()
    ]
    gateway.deregister("q")
    return results


PARTITIONED_SQL = (
    "SELECT w.sid AS s, AVG(w.val) AS m, COUNT(*) AS n "
    "FROM timeSlidingWindow(S, 12, 4) AS w GROUP BY w.sid"
)
PARTIAL_SQL = (
    "SELECT COUNT(*) AS n, MIN(w.val) AS lo, MAX(w.val) AS hi, AVG(w.val) AS m "
    "FROM timeSlidingWindow(S, 12, 4) AS w"
)
PROJECTION_SQL = (
    "SELECT w.ts AS t, w.val AS v "
    "FROM timeSlidingWindow(S, 4, 4) AS w WHERE w.sid = 3"
)


class TestAnalyzer:
    def test_group_by_stream_key_is_partitioned(self):
        engine = engine_with(measurement_rows())
        decision = plan_sql(PARTITIONED_SQL, engine, name="p").partitioning
        assert decision.mode is PartitionMode.PARTITIONED
        assert decision.key_column == "sid"
        assert decision.stream_keys == {"S": 1}
        assert "aggregate" in decision.partitionable_operators
        assert decision.merge_operators == ("merge[concat]",)

    def test_global_combinable_aggregate_is_partial(self):
        engine = engine_with(measurement_rows())
        decision = plan_sql(PARTIAL_SQL, engine, name="p").partitioning
        assert decision.mode is PartitionMode.PARTIAL
        assert decision.merge_operators == ("merge[combine]",)

    def test_projection_is_singleton(self):
        engine = engine_with(measurement_rows())
        decision = plan_sql(PROJECTION_SQL, engine, name="p").partitioning
        assert decision.mode is PartitionMode.SINGLETON

    def test_sequence_udf_with_key_is_partitioned(self):
        schema = StreamSchema(
            (
                Column("ts", SQLType.REAL),
                Column("sid", SQLType.INTEGER),
                Column("val", SQLType.REAL),
                Column("failure", SQLType.INTEGER),
            ),
            time_column="ts",
        )
        engine = StreamEngine()
        engine.register_stream(
            ListSource(Stream("S", schema), [(0.0, 1, 1.0, 0)])
        )
        sql = (
            "SELECT w.sid AS s, MONOTONIC_HAVING(w.ts, w.val, w.failure) AS a "
            "FROM timeSlidingWindow(S, 10, 1) AS w GROUP BY w.sid"
        )
        decision = plan_sql(sql, engine, name="p").partitioning
        assert decision.mode is PartitionMode.PARTITIONED

    def test_sequence_udf_without_key_is_singleton(self):
        schema = StreamSchema(
            (
                Column("ts", SQLType.REAL),
                Column("sid", SQLType.INTEGER),
                Column("val", SQLType.REAL),
                Column("failure", SQLType.INTEGER),
            ),
            time_column="ts",
        )
        engine = StreamEngine()
        engine.register_stream(
            ListSource(Stream("S", schema), [(0.0, 1, 1.0, 0)])
        )
        sql = (
            "SELECT MONOTONIC_HAVING(w.ts, w.val, w.failure) AS a "
            "FROM timeSlidingWindow(S, 10, 1) AS w"
        )
        decision = plan_sql(sql, engine, name="p").partitioning
        assert decision.mode is PartitionMode.SINGLETON

    def test_static_join_key_reaches_stream_via_equivalence(self):
        """GROUP BY s.sid with w.sid = s.sid partitions the stream on sid."""
        from repro.relational import Database, Schema, Table

        schema = Schema("plant")
        schema.add(
            Table(
                "sensor_info",
                [Column("sid", SQLType.INTEGER), Column("assembly", SQLType.TEXT)],
                primary_key=("sid",),
            )
        )
        db = Database(schema)
        db.insert("sensor_info", [(s, f"a{s % 3}") for s in range(12)])
        engine = engine_with(measurement_rows())
        engine.attach_database("plant", db)
        sql = (
            "SELECT i.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 8, 4) AS w, sensor_info AS i "
            "WHERE w.sid = i.sid GROUP BY i.sid"
        )
        decision = plan_sql(sql, engine, name="p").partitioning
        assert decision.mode is PartitionMode.PARTITIONED
        assert decision.stream_keys == {"S": 1}
        # grouping by a non-key static column cannot stay shard-local
        sql2 = (
            "SELECT i.assembly AS a, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 8, 4) AS w, sensor_info AS i "
            "WHERE w.sid = i.sid GROUP BY i.assembly"
        )
        decision2 = plan_sql(sql2, engine, name="p2").partitioning
        assert decision2.mode is PartitionMode.PARTIAL

    def test_stable_hash_is_value_stable(self):
        assert stable_hash(2) == stable_hash(2.0)
        assert stable_hash("sensor-1") == stable_hash("sensor-1")
        assert stable_hash("a") != stable_hash("b")


class TestDeterminism:
    """shards=N output must equal shards=1 output exactly."""

    @pytest.mark.parametrize("sql", [PARTITIONED_SQL, PARTIAL_SQL, PROJECTION_SQL])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_synthetic_stream_equality(self, sql, shards):
        rows = measurement_rows()
        plain = run_gateway(engine_with(rows), sql)
        sharded = run_gateway(
            engine_with(rows, ShardedEngine, shards=shards), sql, shards=shards
        )
        assert plain == sharded
        assert len(plain) > 0

    def test_sparse_shard_keeps_window_grid(self):
        """A sensor that stops early must not cut its shard's grid short."""
        rows = measurement_rows(n_seconds=60, gap_sensor=5, gap_after=8)
        sql = (
            "SELECT w.sid AS s, COUNT(*) AS n, AVG(w.val) AS m "
            "FROM timeSlidingWindow(S, 30, 5) AS w GROUP BY w.sid"
        )
        plain = run_gateway(engine_with(rows), sql)
        sharded = run_gateway(
            engine_with(rows, ShardedEngine, shards=4), sql, shards=4
        )
        assert plain == sharded

    def test_siemens_generator_streams_equal(self):
        """Windows over the Siemens generator streams: shards=1 == shards=4."""
        fleet = generate_fleet(FleetConfig(turbines=4, plants=2))
        sql = (
            "SELECT w.sid AS s, AVG(w.val) AS m, MAX(w.val) AS mx "
            "FROM timeSlidingWindow(S_Msmt, 10, 5) AS w GROUP BY w.sid"
        )

        def run(shards):
            dep = deploy(fleet=fleet, stream_duration=20, shards=shards)
            gateway = dep.gateway
            query = gateway.register(sql, name="q")
            while gateway.step():
                pass
            return [
                (r.window_id, r.window_end, r.columns, r.rows)
                for r in query.results()
            ]

        one, four = run(1), run(4)
        assert one == four
        assert len(one) > 0

    def test_siemens_starql_session_equal(self):
        """The full STARQL path through sessions agrees at any shard count."""
        fleet = generate_fleet(FleetConfig(turbines=4, plants=2))
        starql = diagnostic_catalog()[0].starql

        def run(shards):
            dep = deploy(fleet=fleet, stream_duration=20, shards=shards)
            with dep.session() as session:
                handle = session.submit(starql, name="t")
                while session.step(1):
                    pass
                return [
                    (r.window_id, r.window_end, r.rows)
                    for r in handle.registered.results()
                ]

        assert run(1) == run(4)

    def test_mixed_shard_counts_share_one_engine(self):
        """Regression: different partition layouts of the same window
        grid must not poison each other's cached batches."""
        rows = measurement_rows()
        plain = run_gateway(engine_with(rows), PARTITIONED_SQL)
        engine = engine_with(rows, ShardedEngine, shards=4)
        gateway = GatewayServer(engine)
        q1 = gateway.register(PARTITIONED_SQL, name="one", shards=1)
        q4 = gateway.register(PARTITIONED_SQL, name="four", shards=4)
        q2 = gateway.register(PARTITIONED_SQL, name="two", shards=2)
        while gateway.step():
            pass
        for query in (q1, q4, q2):
            got = [
                (r.window_id, r.window_end, r.columns, r.rows)
                for r in query.results()
            ]
            assert got == plain, query.name

    def test_two_stream_join_partial_stays_exact(self):
        """Regression: a combinable aggregate over a two-stream equi-join
        must co-partition on the join key (round-robin loses pairs)."""
        rows_a = [(float(t), s, float(s)) for t in range(20) for s in range(5)]
        rows_b = [(float(t), s, float(s * 2)) for t in range(20) for s in range(5)]

        def build(cls=StreamEngine, **kwargs):
            engine = cls(**kwargs)
            engine.register_stream(ListSource(Stream("A", SCHEMA), rows_a))
            engine.register_stream(ListSource(Stream("B", SCHEMA), rows_b))
            return engine

        sql = (
            "SELECT COUNT(*) AS n, MAX(b.val) AS mx "
            "FROM timeSlidingWindow(A, 4, 4) AS a, "
            "timeSlidingWindow(B, 4, 4) AS b WHERE a.sid = b.sid"
        )
        decision = plan_sql(sql, build(), name="j").partitioning
        assert decision.mode is PartitionMode.PARTIAL
        assert decision.stream_keys == {"A": 1, "B": 1}  # co-partitioned
        plain = run_gateway(build(), sql)
        sharded = run_gateway(build(ShardedEngine, shards=2), sql, shards=2)
        assert plain == sharded

    def test_two_stream_cross_join_falls_back_to_singleton(self):
        rows = [(float(t), s, 1.0) for t in range(8) for s in range(2)]
        engine = StreamEngine()
        engine.register_stream(ListSource(Stream("A", SCHEMA), rows))
        engine.register_stream(ListSource(Stream("B", SCHEMA), rows))
        sql = (
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(A, 4, 4) AS a, "
            "timeSlidingWindow(B, 4, 4) AS b"
        )
        decision = plan_sql(sql, engine, name="x").partitioning
        assert decision.mode is PartitionMode.SINGLETON

    def test_shard_count_must_fit_pool(self):
        engine = engine_with(measurement_rows(), ShardedEngine, shards=2)
        gateway = GatewayServer(engine)
        with pytest.raises(ValueError):
            gateway.register(PARTITIONED_SQL, name="q", shards=8)

    def test_plain_engine_rejects_shards(self):
        gateway = GatewayServer(engine_with(measurement_rows()))
        with pytest.raises(ValueError):
            gateway.register(PARTITIONED_SQL, name="q", shards=4)
        # shards=1 is accepted anywhere
        gateway.register(PARTITIONED_SQL, name="q1", shards=1)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestForkWorkers:
    def test_fork_matches_serial(self):
        rows = measurement_rows()
        serial = run_gateway(
            engine_with(rows, ShardedEngine, shards=4), PARTITIONED_SQL, shards=4
        )
        forked = run_gateway(
            engine_with(rows, ShardedEngine, shards=4, parallel="fork"),
            PARTITIONED_SQL,
            shards=4,
        )
        assert serial == forked

    def test_deregister_reaps_worker_processes(self):
        import multiprocessing

        engine = engine_with(
            measurement_rows(), ShardedEngine, shards=2, parallel="fork"
        )
        gateway = GatewayServer(engine)
        gateway.register(PARTITIONED_SQL, name="q")
        gateway.step(2)
        assert any(p.is_alive() for p in multiprocessing.active_children())
        gateway.deregister("q")
        for child in multiprocessing.active_children():
            child.join(timeout=2)
        assert not any(p.is_alive() for p in multiprocessing.active_children())


class TestHeartbeat:
    def test_heartbeat_advances_watermark_without_data(self):
        spec = WindowSpec(2, 1)
        rows = [(0.0,), (1.0,)]
        batches = list(
            time_sliding_window(rows + [Heartbeat(5.0)], spec, 0, start=0.0)
        )
        plain = list(time_sliding_window(rows, spec, 0, start=0.0))
        # heartbeat forces the same drains a tuple at ts=5.0 would
        assert len(batches) > len(plain)
        assert [len(b) for b in batches[:2]] == [len(b) for b in plain[:2]]

    def test_heartbeat_anchor_on_empty_shard(self):
        spec = WindowSpec(2, 1)
        batches = list(time_sliding_window([Heartbeat(3.0)], spec, 0))
        assert all(len(b) == 0 for b in batches)


class TestScheduler:
    def _plan(self, name="p"):
        engine = engine_with(measurement_rows())
        return plan_sql(PARTITIONED_SQL, engine, name=name)

    def test_deregister_releases_all_load(self):
        scheduler = Scheduler(2)
        scheduler.place(self._plan("q1"))
        scheduler.assign_shards("q1", 4)
        assert scheduler.total_load() > 0
        scheduler.remove("q1")
        assert scheduler.total_load() == pytest.approx(0.0)
        assert scheduler.placements_for("q1") == []
        assert all(not w.placements for w in scheduler.workers)

    def test_scan_affinity_released_with_last_query(self):
        """Regression: a departed query must not leave phantom cache
        discounts behind (load drift across register/deregister)."""
        scheduler = Scheduler(2)
        first = scheduler.place(self._plan("q1"))
        full_cost = sum(p.cost for p in first if p.operator.startswith("scan["))
        second = scheduler.place(self._plan("q2"))
        discounted = sum(
            p.cost for p in second if p.operator.startswith("scan[")
        )
        assert discounted == pytest.approx(
            full_cost * Scheduler.CACHED_SCAN_FACTOR
        )
        scheduler.remove("q1")
        scheduler.remove("q2")
        assert scheduler.total_load() == pytest.approx(0.0)
        third = scheduler.place(self._plan("q3"))
        recharged = sum(p.cost for p in third if p.operator.startswith("scan["))
        assert recharged == pytest.approx(full_cost)  # discount is gone

    def test_mid_run_deregister_via_gateway(self):
        scheduler = Scheduler(2)
        engine = engine_with(measurement_rows())
        gateway = GatewayServer(engine, scheduler=scheduler)
        gateway.register(PARTITIONED_SQL, name="a")
        gateway.register(PARTITIONED_SQL, name="b")
        gateway.step(3)  # mid-run
        gateway.deregister("a")
        # b's own (residual) placements plus the shared pipeline prefix
        # remain — b still subscribes to the pipeline, so its operators
        # stay accounted exactly once
        remaining = sum(p.cost for p in scheduler.placements_for("b"))
        shared = sum(
            p.cost
            for w in scheduler.workers
            for p in w.placements
            if p.query.startswith("mqo::")
        )
        assert shared > 0  # a's departure did not tear the pipeline down
        assert scheduler.total_load() == pytest.approx(remaining + shared)
        gateway.deregister("b")
        assert scheduler.total_load() == pytest.approx(0.0)

    def test_shard_assignment_spreads_least_loaded(self):
        scheduler = Scheduler(4)
        workers = scheduler.assign_shards("q", 8, cost_per_shard=1.0)
        assert sorted(set(workers)) == [0, 1, 2, 3]
        assert scheduler.balance() == pytest.approx(1.0)

    def test_observe_and_rebalance_moves_hot_shards(self):
        scheduler = Scheduler(2)
        scheduler.assign_shards("q", 4, cost_per_shard=1.0)
        # shard 0 and 1 land on workers 0/1; make worker 0's shards hot
        assignments = scheduler.shard_assignments("q")
        hot = [s for s, w in assignments.items() if w == 0]
        for shard in hot:
            for _ in range(6):
                scheduler.observe_shard("q", shard, seconds=0.01)
        assert scheduler.balance() > 1.25
        moves = scheduler.rebalance(threshold=1.25)
        assert moves
        assert scheduler.balance() <= 1.25 or len(moves) > 0
        moved_ops = {m[1] for m in moves}
        assert all(op.startswith("shard[") for op in moved_ops)

    def test_sharded_engine_reports_loads(self):
        scheduler = Scheduler(2)
        engine = ShardedEngine(shards=4, scheduler=scheduler)
        engine.register_stream(ListSource(Stream("S", SCHEMA), measurement_rows()))
        plan = plan_sql(PARTITIONED_SQL, engine, name="q")
        results = list(engine.run_continuous(plan))
        assert results
        assignments = scheduler.shard_assignments("q")
        assert len(assignments) == 4
        assert scheduler.total_load() > 0


class TestReaderSharing:
    def test_two_queries_share_shard_readers(self):
        engine = engine_with(measurement_rows(), ShardedEngine, shards=2)
        gateway = GatewayServer(engine)
        gateway.register(PARTITIONED_SQL, name="a")
        gateway.register(PARTITIONED_SQL, name="b")
        while gateway.step():
            pass
        # the second query's windows come from the shard caches (batch
        # hits on the recompute path, pane hits on the incremental path)
        assert any(
            cache.stats.hits + cache.stats.pane_hits > 0
            for cache in engine.caches
        )

    def test_release_reader_on_last_deregister(self):
        engine = engine_with(measurement_rows(), ShardedEngine, shards=2)
        gateway = GatewayServer(engine)
        gateway.register(PARTITIONED_SQL, name="a")
        gateway.register(PARTITIONED_SQL, name="b")
        gateway.step(2)
        gateway.deregister("a")
        assert any(group.per_shard[0] for group in engine._groups.values())
        gateway.deregister("b")
        assert all(
            not readers
            for group in engine._groups.values()
            for readers in group.per_shard
        )
