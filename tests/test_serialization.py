"""Round-trip tests for mapping collection persistence."""

import pytest

from repro.mappings import (
    dump_mappings,
    load_mappings,
    mappings_from_dict,
    mappings_to_dict,
)
from repro.siemens import build_siemens_mappings


class TestMappingSerialization:
    def test_dict_round_trip(self):
        original = build_siemens_mappings()
        document = mappings_to_dict(original)
        rebuilt = mappings_from_dict(document)
        assert len(rebuilt) == len(original)
        assert rebuilt.mapped_predicates() == original.mapped_predicates()
        # deep equality of every field via a second serialisation pass
        assert mappings_to_dict(rebuilt) == document

    def test_file_round_trip(self, tmp_path):
        original = build_siemens_mappings()
        path = tmp_path / "mappings.json"
        dump_mappings(original, str(path))
        rebuilt = load_mappings(str(path))
        assert mappings_to_dict(rebuilt) == mappings_to_dict(original)

    def test_stream_flags_preserved(self):
        original = build_siemens_mappings()
        rebuilt = mappings_from_dict(mappings_to_dict(original))
        streams = [m for m in rebuilt if m.is_stream]
        assert len(streams) == len([m for m in original if m.is_stream])

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            mappings_from_dict({"format": "something-else", "mappings": []})

    def test_edited_document_loads(self):
        """A hand-edited entry (the S3 'improving in editors' workflow)."""
        document = mappings_to_dict(build_siemens_mappings())
        entry = document["mappings"][0]
        entry["source"] = entry["source"] + " WHERE tid <> 'retired'"
        rebuilt = mappings_from_dict(document)
        assert len(rebuilt) == len(document["mappings"])

    def test_unfolding_still_works_after_round_trip(self):
        from repro.queries import (ClassAtom, ConjunctiveQuery,
                                   UnionOfConjunctiveQueries)
        from repro.mappings import Unfolder
        from repro.rdf import Variable
        from repro.siemens import SIE

        rebuilt = mappings_from_dict(mappings_to_dict(build_siemens_mappings()))
        x = Variable("x")
        q = UnionOfConjunctiveQueries(
            (ConjunctiveQuery((x,), (ClassAtom(SIE.Turbine, x),)),)
        )
        result = Unfolder(rebuilt).unfold(q)
        assert result.fleet_size == 1
