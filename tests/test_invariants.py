"""Plan-invariant verifier tests: refcount balance, pane-ring bounds and
signature-eligibility agreement, checked mid-flight and at teardown."""

import pytest

from cqgen import build_engine
from repro.analysis import InvariantViolation, verify_gateway, verify_runtime
from repro.exastream import GatewayServer
from repro.siemens import deploy, diagnostic_catalog

ROWS = [(float(i), i % 3, float(i) * 1.5) for i in range(20)]

QUERIES = {
    "agg": (
        "SELECT s.sid AS sid, COUNT(*) AS n, AVG(s.val) AS a "
        "FROM timeSlidingWindow(S, 6, 2) AS s GROUP BY s.sid"
    ),
    "agg_twin": (
        "SELECT s.sid AS sid, SUM(s.val) AS total "
        "FROM timeSlidingWindow(S, 6, 2) AS s GROUP BY s.sid"
    ),
    "join": (
        "SELECT s.sid AS sid, t.kind AS kind "
        "FROM timeSlidingWindow(S, 6, 2) AS s, sensors AS t "
        "WHERE s.sid = t.sid"
    ),
    "pane_join": (
        "SELECT a.sid AS sid, a.val AS va, b.val AS vb "
        "FROM timeSlidingWindow(S, 6, 2) AS a, "
        "timeSlidingWindow(S, 6, 2) AS b "
        "WHERE a.sid = b.sid"
    ),
}


def fresh_gateway():
    return GatewayServer(build_engine(list(ROWS)))


def test_clean_gateway_verifies():
    verify_gateway(fresh_gateway())


@pytest.mark.parametrize("key", sorted(QUERIES))
def test_single_query_lifecycle(key):
    gateway = fresh_gateway()
    gateway.register(QUERIES[key], name=key)
    verify_gateway(gateway)  # after bind, before any execution
    while gateway.step(1):
        verify_gateway(gateway)  # between every window
    gateway.deregister(key)
    verify_gateway(gateway)  # quiescent: every refcount back to zero


def test_concurrent_queries_with_shared_state():
    gateway = fresh_gateway()
    for name, sql in QUERIES.items():
        gateway.register(sql, name=name)
    verify_gateway(gateway)
    while gateway.step():
        pass
    verify_gateway(gateway)
    # staggered teardown exercises the partial-release paths
    for name in QUERIES:
        gateway.deregister(name)
        verify_gateway(gateway)


def test_runtime_ring_bounds_direct():
    gateway = fresh_gateway()
    registered = gateway.register(QUERIES["pane_join"], name="pj")
    gateway.step(3)
    runtime = registered.runtime
    assert verify_runtime(runtime, "pj") == []
    gateway.deregister("pj")


def test_violation_detected_when_refcounts_corrupted():
    gateway = fresh_gateway()
    gateway.register(QUERIES["agg"], name="agg")
    key = next(iter(gateway._reader_refs))
    gateway._reader_refs[key] += 1  # simulate a leaked reference
    with pytest.raises(InvariantViolation) as info:
        verify_gateway(gateway)
    assert any("refcount" in v or "reader" in v for v in info.value.violations)


def test_violation_detected_on_stale_reader_key():
    gateway = fresh_gateway()
    gateway.register(QUERIES["agg"], name="agg")
    gateway._reader_keys["ghost"] = set(gateway._reader_keys["agg"])
    with pytest.raises(InvariantViolation):
        verify_gateway(gateway)


def test_audit_mode_runs_checks_inline(monkeypatch):
    monkeypatch.setenv("REPRO_AUDIT", "1")
    gateway = fresh_gateway()
    assert gateway.audit
    for name, sql in QUERIES.items():
        gateway.register(sql, name=name)
    while gateway.step():  # audit hooks fire at drain and on every deregister
        pass
    for name in QUERIES:
        gateway.deregister(name)
    verify_gateway(gateway)


def test_audit_mode_over_siemens_session(monkeypatch):
    monkeypatch.setenv("REPRO_AUDIT", "1")
    deployment = deploy(stream_duration=5)
    assert deployment.gateway.audit
    session = deployment.session()
    try:
        for task in diagnostic_catalog()[:4]:
            session.submit(task.starql, name=f"t{task.task_id}")
        session.step(20)
        verify_gateway(deployment.gateway)
    finally:
        session.close()
    verify_gateway(deployment.gateway)
