"""Unit tests for RDF terms and namespaces."""

import datetime

import pytest

from repro.rdf import (
    IRI,
    OWL,
    RDF,
    XSD,
    BlankNode,
    Literal,
    Namespace,
    PrefixMap,
    Variable,
    term_from_python,
)


class TestIRI:
    def test_local_name_hash(self):
        assert IRI("http://ex.org/onto#Turbine").local_name == "Turbine"

    def test_local_name_slash(self):
        assert IRI("http://ex.org/data/t1").local_name == "t1"

    def test_namespace(self):
        assert IRI("http://ex.org/onto#Turbine").namespace == "http://ex.org/onto#"

    def test_n3(self):
        assert IRI("urn:x").n3() == "<urn:x>"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_equality_and_hash(self):
        assert IRI("urn:a") == IRI("urn:a")
        assert hash(IRI("urn:a")) == hash(IRI("urn:a"))
        assert IRI("urn:a") != IRI("urn:b")

    def test_is_ground(self):
        assert IRI("urn:a").is_ground()


class TestLiteral:
    def test_integer_roundtrip(self):
        assert Literal("42", XSD.integer).to_python() == 42

    def test_double_roundtrip(self):
        assert Literal("1.5", XSD.double).to_python() == 1.5

    def test_boolean_roundtrip(self):
        assert Literal("true", XSD.boolean).to_python() is True
        assert Literal("false", XSD.boolean).to_python() is False

    def test_datetime_roundtrip(self):
        dt = datetime.datetime(2011, 6, 1, 12, 30)
        lit = Literal(dt.isoformat(), XSD.dateTime)
        assert lit.to_python() == dt

    def test_n3_plain_string(self):
        assert Literal("abc").n3() == '"abc"'

    def test_n3_typed(self):
        assert "^^" in Literal("42", XSD.integer).n3()

    def test_n3_escaping(self):
        assert Literal('say "hi"').n3() == '"say \\"hi\\""'

    def test_language_tag(self):
        assert Literal("Turbine", language="en").n3() == '"Turbine"@en'


class TestVariable:
    def test_n3(self):
        assert Variable("x").n3() == "?x"

    def test_not_ground(self):
        assert not Variable("x").is_ground()

    def test_rejects_question_mark(self):
        with pytest.raises(ValueError):
            Variable("?x")


class TestBlankNode:
    def test_n3(self):
        assert BlankNode("b0").n3() == "_:b0"


class TestTermFromPython:
    def test_int(self):
        assert term_from_python(3) == Literal("3", XSD.integer)

    def test_bool_before_int(self):
        assert term_from_python(True) == Literal("true", XSD.boolean)

    def test_float(self):
        assert term_from_python(2.5).datatype == XSD.double

    def test_str(self):
        assert term_from_python("x") == Literal("x", XSD.string)

    def test_passthrough(self):
        iri = IRI("urn:a")
        assert term_from_python(iri) is iri

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            term_from_python(object())


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://ex.org#")
        assert ns.Turbine == IRI("http://ex.org#Turbine")

    def test_item_access(self):
        ns = Namespace("http://ex.org#")
        assert ns["has-value"] == IRI("http://ex.org#has-value")

    def test_contains(self):
        ns = Namespace("http://ex.org#")
        assert ns.Turbine in ns
        assert IRI("urn:other") not in ns

    def test_wellknown(self):
        assert RDF.type.value.endswith("#type")
        assert OWL.Thing.local_name == "Thing"


class TestPrefixMap:
    def test_expand(self):
        pm = PrefixMap()
        pm.bind("sie", "http://siemens.com#")
        assert pm.expand("sie:Turbine") == IRI("http://siemens.com#Turbine")

    def test_expand_unbound_raises(self):
        with pytest.raises(KeyError):
            PrefixMap().expand("nope:X")

    def test_shrink(self):
        pm = PrefixMap()
        pm.bind("sie", "http://siemens.com#")
        assert pm.shrink(IRI("http://siemens.com#Turbine")) == "sie:Turbine"

    def test_shrink_falls_back_to_n3(self):
        pm = PrefixMap()
        assert pm.shrink(IRI("urn:zzz")) == "<urn:zzz>"

    def test_default_bindings(self):
        pm = PrefixMap()
        assert pm.expand("rdf:type") == RDF.type
