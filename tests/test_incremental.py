"""Differential tests: pane-incremental execution ≡ full recompute.

The incremental subsystem's correctness bar (same as sharding's): for
every query, every window spec and every shard count, executing with
``incremental=True`` must produce **byte-identical** ``WindowResult``
sequences to the classic full-recompute path — including float
aggregates, whose summation order the SUM accumulator preserves
chunk-by-chunk.  Anything the pane path cannot reproduce exactly must
fall back, so equality is the single property that proves the whole
subsystem.
"""

import random

import pytest

from cqgen import (
    SCHEMA,
    SPECS,
    build_engine,
    measurement_rows,
    random_single_stream_sql,
    run_engine,
)
from repro.exastream import (
    CountAccumulator,
    IncrementalMode,
    MaxAccumulator,
    MinAccumulator,
    StreamEngine,
    SumAccumulator,
    analyze_incremental,
    plan_sql,
)
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet
from repro.streams import (
    ListSource,
    PanePlan,
    Stream,
    WindowSpec,
    pane_plan,
)


def assert_differential(sql, rows=None, shards=1, cache_capacity=4096):
    """Byte-identical output across execution modes; returns both runs."""
    if rows is None:
        rows = measurement_rows()
    incremental = run_engine(
        build_engine(
            rows, incremental=True, shards=shards,
            cache_capacity=cache_capacity,
        ),
        sql,
        shards,
    )
    recompute = run_engine(
        build_engine(
            rows, incremental=False, shards=shards,
            cache_capacity=cache_capacity,
        ),
        sql,
        shards,
    )
    assert incremental == recompute
    assert len(incremental) > 0
    return incremental


AGG_SQL = (
    "SELECT w.sid AS s, AVG(w.val) AS m, COUNT(*) AS n, "
    "MIN(w.val) AS lo, MAX(w.val) AS hi "
    "FROM timeSlidingWindow(S, {r}, {s}) AS w GROUP BY w.sid"
)

JOIN_SQL = (
    "SELECT w.sid AS s, AVG(w.val * 9 / 5 + 32) AS f, SUM(w.val) AS total "
    "FROM timeSlidingWindow(S, {r}, {s}) AS w, sensors AS t "
    "WHERE w.sid = t.sid AND t.kind = 'temp' AND w.val > 51 GROUP BY w.sid"
)

HAVING_SQL = (
    "SELECT w.sid AS s, AVG(w.val) AS m "
    "FROM timeSlidingWindow(S, {r}, {s}) AS w "
    "GROUP BY w.sid HAVING AVG(w.val) > 60"
)

GLOBAL_SQL = (
    "SELECT COUNT(*) AS n, AVG(w.val) AS m "
    "FROM timeSlidingWindow(S, {r}, {s}) AS w"
)

SEQ_UDF_SQL = (  # non-decomposable: must classify RECOMPUTE and still agree
    "SELECT w.sid AS s, SLOPE(w.ts, w.val) AS trend "
    "FROM timeSlidingWindow(S, {r}, {s}) AS w GROUP BY w.sid"
)

PROJECTION_SQL = (  # row order is part of the result: RECOMPUTE
    "SELECT w.ts AS t, w.val AS v FROM timeSlidingWindow(S, {r}, {s}) AS w"
)


class TestPaneMath:
    def test_gcd_pane_plan(self):
        plan = pane_plan(WindowSpec(80, 5))
        assert plan == PanePlan(5.0, 16, 1)
        plan = pane_plan(WindowSpec(30, 12))
        assert plan == PanePlan(6.0, 5, 2)

    def test_fractional_dyadic_spec(self):
        plan = pane_plan(WindowSpec(2.5, 0.5))
        assert plan == PanePlan(0.5, 5, 1)

    def test_no_overlap_specs_refused(self):
        assert pane_plan(WindowSpec(5, 5)) is None  # tumbling
        assert pane_plan(WindowSpec(5, 10)) is None  # sampling

    def test_non_commensurate_floats_refused(self):
        # 0.1 / 0.3 are not exact in binary: the rational gcd is tiny and
        # the pane count explodes past the bound.
        assert pane_plan(WindowSpec(0.3, 0.1)) is None

    def test_window_panes_alignment(self):
        plan = pane_plan(WindowSpec(20, 5))
        assert list(plan.window_panes(0)) == [-4, -3, -2, -1]
        assert list(plan.window_panes(3)) == [-1, 0, 1, 2]


class TestClassification:
    def _plan(self, sql, rows=None):
        engine = build_engine(rows or measurement_rows(20))
        return plan_sql(sql, engine, name="q")

    def test_combinable_aggregate_is_incremental(self):
        decision = self._plan(AGG_SQL.format(r=80, s=5)).incremental
        assert decision.mode is IncrementalMode.PANE_INCREMENTAL
        assert decision.panes.panes_per_window == 16

    def test_sequence_udf_falls_back(self):
        decision = self._plan(SEQ_UDF_SQL.format(r=80, s=5)).incremental
        assert decision.mode is IncrementalMode.RECOMPUTE
        assert "non-decomposable" in decision.reason

    def test_projection_falls_back(self):
        decision = self._plan(PROJECTION_SQL.format(r=80, s=5)).incremental
        assert decision.mode is IncrementalMode.RECOMPUTE

    def test_tumbling_window_falls_back(self):
        decision = self._plan(AGG_SQL.format(r=5, s=5)).incremental
        assert decision.mode is IncrementalMode.RECOMPUTE

    def test_two_stream_equi_join_is_pane_join(self):
        engine = StreamEngine()
        engine.register_stream(
            ListSource(Stream("A", SCHEMA), measurement_rows(20))
        )
        engine.register_stream(
            ListSource(Stream("B", SCHEMA), measurement_rows(20))
        )
        plan = plan_sql(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(A, 20, 5) AS a, "
            "timeSlidingWindow(B, 20, 5) AS b WHERE a.sid = b.sid",
            engine,
            name="j",
        )
        assert plan.incremental.mode is IncrementalMode.PANE_JOIN
        assert plan.incremental.join.left_keys == ("a.sid",)
        assert analyze_incremental(plan).mode is IncrementalMode.PANE_JOIN

    def test_two_stream_cross_join_falls_back(self):
        """No direct stream-stream equi-key: symmetric hashing has
        nothing to hash on, so the plan stays on the recompute path."""
        engine = StreamEngine()
        engine.register_stream(
            ListSource(Stream("A", SCHEMA), measurement_rows(20))
        )
        engine.register_stream(
            ListSource(Stream("B", SCHEMA), measurement_rows(20))
        )
        plan = plan_sql(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(A, 20, 5) AS a, "
            "timeSlidingWindow(B, 20, 5) AS b WHERE a.val < b.val",
            engine,
            name="x",
        )
        assert plan.incremental.mode is IncrementalMode.RECOMPUTE
        assert "equi-join" in plan.incremental.reason


class TestAccumulators:
    def test_sum_is_bit_exact_across_chunking(self):
        rng = random.Random(11)
        values = [rng.uniform(-1e6, 1e6) for _ in range(997)]
        payloads = []
        i = 0
        while i < len(values):
            step = rng.randint(1, 60)
            payloads.append(SumAccumulator.build(values[i : i + step]))
            i += step
        assert SumAccumulator.combine(payloads) == sum(values)

    def test_empty_and_scalar_payloads(self):
        assert SumAccumulator.combine([[], []]) is None
        assert CountAccumulator.combine([0, 3, 2]) == 5
        assert MinAccumulator.combine([None, 3.5, None, 2.5]) == 2.5
        assert MaxAccumulator.combine([None, None]) is None


class TestDifferential:
    @pytest.mark.parametrize("r,s", SPECS)
    @pytest.mark.parametrize("shards", [1, 2])
    def test_aggregates(self, r, s, shards):
        assert_differential(AGG_SQL.format(r=r, s=s), shards=shards)

    @pytest.mark.parametrize("r,s", SPECS)
    @pytest.mark.parametrize("shards", [1, 2])
    def test_static_join_with_filters(self, r, s, shards):
        assert_differential(JOIN_SQL.format(r=r, s=s), shards=shards)

    @pytest.mark.parametrize("r,s", SPECS)
    def test_having(self, r, s):
        assert_differential(HAVING_SQL.format(r=r, s=s))

    @pytest.mark.parametrize("r,s", SPECS)
    def test_whole_window_group(self, r, s):
        assert_differential(GLOBAL_SQL.format(r=r, s=s))

    @pytest.mark.parametrize("r,s", SPECS)
    def test_non_decomposable_paths_agree(self, r, s):
        assert_differential(SEQ_UDF_SQL.format(r=r, s=s))
        assert_differential(PROJECTION_SQL.format(r=r, s=s))

    def test_incremental_actually_engages(self):
        """Guard against the pane path silently always falling back."""
        engine = build_engine(measurement_rows())
        plan = plan_sql(AGG_SQL.format(r=80, s=5), engine, name="q")
        results = list(engine.run_continuous(plan))
        metrics = engine.metrics.query("q")
        assert len(results) > 10
        assert metrics.windows_incremental == metrics.windows_processed
        assert metrics.panes_built > 0

    def test_sensor_gap_sparse_panes(self):
        rows = measurement_rows(gap_sensor=2, gap=(40, 120))
        assert_differential(AGG_SQL.format(r=80, s=5), rows=rows)
        assert_differential(AGG_SQL.format(r=80, s=5), rows=rows, shards=2)

    def test_full_outage_empty_panes(self):
        """A silent stream period: whole panes (and windows) are empty."""
        rows = measurement_rows(n_seconds=240, silence=(60, 150))
        assert_differential(AGG_SQL.format(r=80, s=5), rows=rows)
        assert_differential(JOIN_SQL.format(r=80, s=5), rows=rows, shards=2)

    def test_pane_eviction_forces_fallback(self):
        """A tiny cache evicts panes mid-run; fallback keeps output exact."""
        rows = measurement_rows()
        sql = AGG_SQL.format(r=80, s=5)
        tiny = run_engine(build_engine(rows, cache_capacity=2), sql)
        reference = run_engine(build_engine(rows, incremental=False), sql)
        assert tiny == reference

    def test_mixed_consumers_share_one_reader(self):
        """An incremental and a recompute query on the same window grid:
        the recompute query's batches assemble from the shared pulses."""
        from repro.exastream import GatewayServer

        rows = measurement_rows()

        def run(incremental):
            engine = build_engine(rows, incremental=incremental)
            gateway = GatewayServer(engine)
            agg = gateway.register(AGG_SQL.format(r=20, s=5), name="agg")
            proj = gateway.register(
                PROJECTION_SQL.format(r=20, s=5), name="proj"
            )
            while gateway.step():
                pass
            return [
                [
                    (r.window_id, r.window_end, tuple(r.columns), tuple(r.rows))
                    for r in q.results()
                ]
                for q in (agg, proj)
            ]

        assert run(True) == run(False)


class TestDisorderFallback:
    """`ListSource` rejects unordered tuples outright, so disorder can
    only reach a reader through raw iterators — the reader-level guard
    is the defence in depth behind that front door."""

    @staticmethod
    def _readers(rows):
        from repro.streams import SharedWindowReader, WindowCache

        spec = WindowSpec(20, 5)
        reader = SharedWindowReader(
            "S", iter(list(rows)), spec, 0, WindowCache(4096)
        )
        reference = SharedWindowReader(
            "S", iter(list(rows)), spec, 0, WindowCache(4096)
        )
        return reader, reference

    def test_late_tuple_disables_pane_path(self):
        rows = [(float(t), t % 4, float(t)) for t in range(60)]
        rows[40], rows[48] = rows[48], rows[40]  # genuine late arrival
        reader, reference = self._readers(rows)
        views = []
        window_id = 0
        while True:
            view = reader.pane_view(window_id)
            if view is None:
                batch = reader.window(window_id)
                if batch is None:
                    break
                views.append((window_id, batch.end, tuple(batch.tuples)))
            else:
                tuples = [t for p in view.panes for t in p.tuples]
                tuples.extend(view.edge)
                views.append((window_id, view.end, tuple(tuples)))
            window_id += 1
        # the reader served early windows from panes, then fell back
        assert any(v is not None for v in views)
        expected = [
            (b.window_id, b.end, tuple(b.tuples))
            for b in reference.all_windows()
        ]
        assert views == expected

    def test_disorder_after_edge_tuple_breaks_pane_path(self):
        """Regression: a tuple arriving after the pulse-instant (edge)
        tuple but belonging to an older pane reorders pane concatenation
        relative to arrival order — the reader must break, not serve."""
        from repro.streams import SharedWindowReader, WindowCache

        rows = [(4.5,), (5.0,), (4.7,), (21.0,)]
        spec = WindowSpec(10, 5)
        reader = SharedWindowReader(
            "S", iter(rows), spec, 0, WindowCache(64), start=0.0
        )
        assert reader.pane_view(0) is not None
        assert reader.pane_view(1) is None  # 4.7 after the 5.0 edge
        reference = SharedWindowReader(
            "S", iter(list(rows)), spec, 0, WindowCache(64), start=0.0
        )
        expected = {
            b.window_id: tuple(b.tuples) for b in reference.all_windows()
        }
        batch = reader.window(1)
        assert batch is not None
        assert tuple(batch.tuples) == expected[1] == ((4.5,), (5.0,), (4.7,))

    def test_pane_capacity_validation(self):
        from repro.streams import WindowCache

        with pytest.raises(ValueError):
            WindowCache(64, pane_capacity=0)

    def test_pre_break_windows_stay_readable(self):
        """Regression: a late tuple breaking the pane path at pulse k
        must not take down windows < k for lagging readers — their panes
        were sliced before the break and remain valid."""
        from repro.streams import SharedWindowReader, WindowCache

        rows = [(0.0,), (1.0,), (2.0,), (3.0,), (1.5,), (4.0,), (5.0,)]
        spec = WindowSpec(2, 1)
        reader = SharedWindowReader("S", iter(rows), spec, 0, WindowCache(64))
        # leading consumer advances on the pane path until the break
        assert reader.pane_view(0) is not None
        assert reader.pane_view(1) is not None
        assert reader.pane_view(2) is not None
        assert reader.pane_view(3) is None  # late 1.5 breaks pulse 3
        # a lagging consumer must still read the pre-break windows
        reference = SharedWindowReader(
            "S", iter(list(rows)), spec, 0, WindowCache(64)
        )
        expected = {
            b.window_id: (b.start, b.end, tuple(b.tuples))
            for b in reference.all_windows()
        }
        for window_id in (0, 1, 2):
            batch = reader.window(window_id)
            assert batch is not None, window_id
            assert (
                batch.start, batch.end, tuple(batch.tuples)
            ) == expected[window_id]
        # windows from the break onward come from live batch assembly
        batch = reader.window(3)
        assert batch is not None
        assert (batch.start, batch.end, tuple(batch.tuples)) == expected[3]

    def test_ordered_stream_keeps_pane_path(self):
        rows = [(float(t), t % 4, float(t)) for t in range(60)]
        reader, _ = self._readers(rows)
        window_id = 0
        served = 0
        while True:
            view = reader.pane_view(window_id)
            if view is None:
                assert reader.window(window_id) is None  # true end of stream
                break
            served += 1
            window_id += 1
        assert served > 10

    def test_late_pane_demand_warms_up_gracefully(self):
        """Regression: demanding panes on an already-advanced reader must
        warm up (first windows fall back) — not permanently break."""
        rows = [(float(t), t % 4, float(t)) for t in range(60)]
        reader, reference = self._readers(rows)
        expected = {
            b.window_id: (b.end, tuple(b.tuples))
            for b in reference.all_windows()
        }
        # a recompute consumer advances the reader first
        for window_id in range(5):
            assert reader.window(window_id) is not None
        # now an incremental consumer joins: fallback during warmup,
        # pane-served once the ring spans a full window
        reader.demand_panes()
        served_from_panes = 0
        window_id = 5
        while True:
            view = reader.pane_view(window_id)
            if view is not None:
                served_from_panes += 1
                tuples = [t for p in view.panes for t in p.tuples]
                tuples.extend(view.edge)
                assert (view.end, tuple(tuples)) == expected[window_id]
            else:
                batch = reader.window(window_id)
                if batch is None:
                    break
                assert (batch.end, tuple(batch.tuples)) == expected[window_id]
            window_id += 1
        # pane coverage needs panes_per_window pulses after the demand:
        # windows 9..12 of the 13-window stream are pane-served
        assert served_from_panes >= 3  # the pane path resumed

    def test_explicit_pulse_start(self):
        """A PULSE START anchor ahead of the stream start: the pre-anchor
        tuples land in panes behind the first window and must not break
        the pane path or the output."""
        from dataclasses import replace

        rows = measurement_rows(n_seconds=100)

        def run(incremental):
            engine = build_engine(rows, incremental=incremental)
            plan = plan_sql(AGG_SQL.format(r=20, s=5), engine, name="q")
            plan = replace(plan, start=30.0)
            plan.partitioning = None
            plan.incremental = None
            return [
                (r.window_id, r.window_end, tuple(r.columns), tuple(r.rows))
                for r in engine.run_continuous(plan)
            ]

        assert run(True) == run(False)


class TestFloatBoundaryGrids:
    """Window grids anchored at arbitrary floats: rounded window-begin
    arithmetic can disagree with pane division by one ulp.  The reader
    must re-derive such tuples' panes from the batch expressions — or
    fall back — never silently diverge."""

    @staticmethod
    def _run(rows, r, s, incremental):
        engine = StreamEngine(incremental=incremental)
        engine.register_stream(ListSource(Stream("S", SCHEMA), list(rows)))
        plan = plan_sql(
            f"SELECT COUNT(*) AS n, SUM(w.val) AS total "
            f"FROM timeSlidingWindow(S, {r}, {s}) AS w",
            engine,
            name="q",
        )
        out = [
            (x.window_id, x.window_end, tuple(x.rows))
            for x in engine.run_continuous(plan)
        ]
        return out, engine.metrics.query("q")

    def test_tuple_on_rounded_window_begin(self):
        """Regression: a tuple exactly at a float `end - range` boundary
        of a non-pane-aligned grid made pane output diverge by one tuple."""
        anchor = 102.77205352918084
        rows = [(anchor + k * 0.5, 0, 1.0) for k in range(80)]
        rows.append(((anchor + 53 * 0.5) - 2.5, 0, 1.0))
        rows.sort(key=lambda t: t[0])
        incremental, _ = self._run(rows, 2.5, 0.5, True)
        recompute, _ = self._run(rows, 2.5, 0.5, False)
        assert incremental == recompute

    def test_messy_anchor_keeps_pane_path(self):
        """Grid-aligned tuples on a non-representable anchor stay on the
        pane path via the correction, and match recompute exactly."""
        anchor = 102.77205352918084
        rows = [(anchor + k * 0.5, 0, 1.0) for k in range(80)]
        incremental, metrics = self._run(rows, 2.5, 0.5, True)
        recompute, _ = self._run(rows, 2.5, 0.5, False)
        assert incremental == recompute
        assert metrics.windows_incremental == metrics.windows_processed

    def test_random_float_anchors(self):
        rng = random.Random(5)
        for _ in range(4):
            base = rng.uniform(1, 1e6)
            rows = sorted(
                (base + rng.uniform(0, 120), 0, rng.uniform(0, 100))
                for _ in range(300)
            )
            incremental, metrics = self._run(rows, 16.0, 2.0, True)
            recompute, _ = self._run(rows, 16.0, 2.0, False)
            assert incremental == recompute
            assert metrics.windows_incremental > 0


class TestRandomizedDifferential:
    """Seeded random single-stream CQs from the shared harness."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_queries(self, seed):
        rng = random.Random(1000 + seed)
        rows = measurement_rows(n_seconds=120)
        r, s = SPECS[seed % len(SPECS)]
        sql = random_single_stream_sql(rng, r, s)
        shards = 1 + (seed % 2)
        assert_differential(sql, rows=rows, shards=shards)


class TestSiemensDifferential:
    """Every deployment diagnostic task, incremental vs recompute."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(turbines=4, plants=2))

    def _run_all(self, fleet, incremental):
        dep = deploy(fleet=fleet, stream_duration=20, incremental=incremental)
        with dep.session() as session:
            handles = [
                session.submit(task.starql, name=f"t{task.task_id}")
                for task in diagnostic_catalog()
            ]
            while session.step(1):
                pass
            return {
                handle.registered.name: [
                    (r.window_id, r.window_end, tuple(r.columns), tuple(r.rows))
                    for r in handle.registered.results()
                ]
                for handle in handles
            }

    def test_all_diagnostic_tasks_equal(self, fleet):
        incremental = self._run_all(fleet, True)
        recompute = self._run_all(fleet, False)
        assert incremental.keys() == recompute.keys()
        for name in incremental:
            assert incremental[name] == recompute[name], name
        assert any(len(v) > 0 for v in incremental.values())

    def test_incremental_engages_on_decomposable_tasks(self, fleet):
        dep = deploy(fleet=fleet, stream_duration=20, incremental=True)
        with dep.session() as session:
            for task in diagnostic_catalog():
                session.submit(task.starql, name=f"t{task.task_id}")
            while session.step(1):
                pass
        per_query = dep.engine.metrics.per_query
        incremental_windows = sum(
            m.windows_incremental for m in per_query.values()
        )
        assert incremental_windows > 0


class TestStaticFilterPushdown:
    def test_static_filter_applies_on_join_probe_path(self):
        """Regression: single-alias filters on a static relation were
        dropped when the static joined through the indexed probe path."""
        rows = measurement_rows(n_seconds=20)
        sql = (
            "SELECT w.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 8, 4) AS w, sensors AS t "
            "WHERE w.sid = t.sid AND t.kind = 'temp' GROUP BY w.sid"
        )
        for incremental in (True, False):
            engine = build_engine(rows, incremental=incremental)
            plan = plan_sql(sql, engine, name="q")
            out = list(engine.run_continuous(plan))
            sids = {row[0] for result in out for row in result.rows}
            # sensors 0 and 3 are 'pres' in static_db(): filtered out
            assert sids == {1, 2, 4, 5}, (incremental, sids)
