"""Mid-flight re-planning: demotion guards and their exactness proof.

A pane-tier plan may be demoted to full recompute at *any* window
boundary — by the gateway's re-planning guard when the estimated
overlap win never materializes, or directly through
``PlanRuntime.demote`` — and the delivered ``WindowResult`` sequence
must be byte-identical to both an uninterrupted pane run and a
recompute-from-the-start run.  That is the same permanent-fallback
contract the pane-break machinery already honors; the guard only adds a
*policy* for pulling the lever.

The regression scenario (PR 3's documented ~0.84x pane trap): an
overlap-2 stream whose dense head baits the estimator into keeping the
pane tier, then goes sparse — the guard must notice the missing reuse
and demote mid-flight.
"""

import pytest

from cqgen import build_engine, run_engine, snapshot
from repro.analysis.verifier import verify_gateway
from repro.exastream import GatewayServer, IncrementalMode, plan_sql

#: overlap factor 2: the smallest grid where panes are reused at all,
#: and the one PR 3 measured at ~0.84x on sparse streams
RANGE, SLIDE = 40, 20

SQL = (
    "SELECT w.sid AS s, COUNT(*) AS n, SUM(w.val) AS total "
    f"FROM timeSlidingWindow(S, {RANGE}, {SLIDE}) AS w GROUP BY w.sid"
)

JOIN_SQL = (
    "SELECT a.sid AS g, COUNT(*) AS n, SUM(a.val + b.val) AS total "
    f"FROM timeSlidingWindow(A, {RANGE}, {SLIDE}) AS a, "
    f"timeSlidingWindow(B, {RANGE}, {SLIDE}) AS b "
    "WHERE a.sid = b.sid GROUP BY a.sid"
)


def sparse_rows(n_seconds=300, step=3):
    """~1/3 tuple per second: panes are mostly bookkeeping."""
    return [(float(t), (t // step) % 3, 50.0 + t % 17) for t in
            range(0, n_seconds, step)]


def bait_and_starve_rows():
    """A dense head (what registration samples) then a sparse tail."""
    dense = [
        (t + i / 10.0, (t + i) % 6, 50.0 + (t * 7 + i) % 23)
        for t in range(0, 50)
        for i in range(6)
    ]
    sparse = [(float(t), t % 6, 50.0 + t % 23) for t in range(50, 400, 25)]
    return dense + sparse


def run_demoting(rows, sql, demote_after, *, shards=1, streams=None):
    """Gateway run that demotes the (pane) runtime after ``k`` windows."""
    engine = build_engine(rows, shards=shards, streams=streams)
    gateway = GatewayServer(engine)
    registered = gateway.register(
        sql, name="q", shards=shards if shards > 1 else None
    )
    windows = 0
    while gateway.step(1):
        windows += 1
        if windows == demote_after:
            assert registered.runtime.demote("test demotion"), (
                "demotion must apply while the pane tier is active"
            )
    return snapshot(registered), registered.runtime


class TestDirectDemotion:
    """``demote()`` at an arbitrary window boundary is exact."""

    @pytest.mark.parametrize("demote_after", (1, 3, 7))
    def test_single_stream_pane(self, demote_after):
        rows = sparse_rows()
        demoted, runtime = run_demoting(rows, SQL, demote_after)
        assert runtime.demoted
        uninterrupted = run_engine(build_engine(rows), SQL)
        recompute = run_engine(build_engine(rows, incremental=False), SQL)
        assert uninterrupted == recompute  # the standing house rule
        assert demoted == recompute  # and demotion does not break it

    @pytest.mark.parametrize("demote_after", (2, 5))
    def test_pane_join(self, demote_after):
        streams = {
            "A": sparse_rows(),
            "B": sparse_rows(step=4),
        }
        engine = build_engine(streams=streams)
        plan = plan_sql(JOIN_SQL, engine, name="probe")
        assert plan.incremental.mode is IncrementalMode.PANE_JOIN
        demoted, runtime = run_demoting(
            None, JOIN_SQL, demote_after, streams=streams
        )
        assert runtime.demoted
        oracle = run_engine(
            build_engine(streams=streams, incremental=False), JOIN_SQL
        )
        assert demoted == oracle

    @pytest.mark.parametrize("demote_after", (2,))
    def test_sharded_local(self, demote_after):
        rows = sparse_rows()
        demoted, runtime = run_demoting(rows, SQL, demote_after, shards=2)
        assert runtime.demoted
        oracle = run_engine(
            build_engine(rows, shards=2, incremental=False), SQL, shards=2
        )
        assert demoted == oracle

    def test_demote_is_idempotent_and_gated(self):
        rows = sparse_rows()
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        gateway.step(1)
        assert registered.runtime.demote("once") is True
        assert registered.runtime.demote("twice") is False  # already demoted
        while gateway.step(1):
            pass
        recompute = run_engine(build_engine(rows, incremental=False), SQL)
        assert snapshot(registered) == recompute

    def test_demote_on_recompute_plan_is_refused(self):
        rows = sparse_rows()
        engine = build_engine(rows, incremental=False)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        gateway.step(1)
        assert registered.runtime.demote("pointless") is False


class TestGuardDemotion:
    """The gateway's re-planning guard fires on its own and stays exact."""

    def test_bait_and_starve_regression(self):
        rows = bait_and_starve_rows()
        engine = build_engine(rows, adaptive=True)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        choice = registered.plan.choice
        # the dense head baits the estimator into keeping the pane tier
        assert choice.chosen is IncrementalMode.PANE_INCREMENTAL
        assert registered.guard is not None
        while gateway.step(1):
            pass
        assert registered.guard.fired
        assert registered.runtime.demoted
        assert choice.demoted_at_window is not None
        assert "pane reuse below cost threshold" in choice.demotion_reason
        demotions = gateway.metrics_snapshot().value(
            "plan_demotions_total", query="q"
        )
        assert demotions == 1
        recompute = run_engine(build_engine(rows, incremental=False), SQL)
        uninterrupted = run_engine(build_engine(rows), SQL)
        assert snapshot(registered) == recompute == uninterrupted

    def test_guard_holds_on_dense_streams(self):
        """Dense overlap keeps its pane win: the guard must not fire."""
        rows = [
            (t + i / 10.0, (t + i) % 6, 50.0 + (t * 7 + i) % 23)
            for t in range(0, 120)
            for i in range(4)
        ]
        engine = build_engine(rows, adaptive=True)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        assert registered.guard is not None
        while gateway.step(1):
            pass
        assert not registered.guard.fired
        assert not registered.runtime.demoted
        metrics = engine.metrics.query("q")
        assert metrics.windows_incremental > 0
        assert snapshot(registered) == run_engine(build_engine(rows), SQL)

    def test_guard_demotion_under_audit(self, monkeypatch):
        """The invariant verifier accepts the demoted state end to end."""
        monkeypatch.setenv("REPRO_AUDIT", "1")
        rows = bait_and_starve_rows()
        engine = build_engine(rows, adaptive=True)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        assert gateway.audit
        while gateway.step(1):
            pass
        assert registered.runtime.demoted
        verify_gateway(gateway)  # explicit final check on the demoted state
        recompute = run_engine(build_engine(rows, incremental=False), SQL)
        assert snapshot(registered) == recompute


class TestDemotionDurability:
    def test_snapshot_restore_preserves_demotion(self):
        rows = sparse_rows()
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        for _ in range(3):
            gateway.step(1)
        assert registered.runtime.demote("pre-checkpoint")
        state = registered.runtime.snapshot_state()
        assert state["demoted"] is True
        assert state["demotion_reason"] == "pre-checkpoint"

        fresh = build_engine(rows)
        fresh_gateway = GatewayServer(fresh)
        recovered = fresh_gateway.register(SQL, name="q")
        recovered.runtime.restore_state(state)
        assert recovered.runtime.demoted
        recovered.next_window = registered.next_window
        while fresh_gateway.step(1):
            pass
        oracle = run_engine(build_engine(rows, incremental=False), SQL)
        tail = snapshot(recovered)
        assert tail == oracle[len(oracle) - len(tail):]

    def test_pre_demotion_state_restores_cleanly(self):
        """A checkpoint taken before this feature has no demotion keys."""
        rows = sparse_rows()
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q")
        gateway.step(1)
        state = registered.runtime.snapshot_state()
        state.pop("demoted")
        state.pop("demotion_reason")
        fresh = build_engine(rows)
        recovered = GatewayServer(fresh).register(SQL, name="q")
        recovered.runtime.restore_state(state)
        assert recovered.runtime.demoted is False


class TestForkRestriction:
    def test_fork_runtime_refuses_demotion(self):
        """Fork workers hold pane state in child processes: no demotion
        (mirrors the checkpoint RecoveryError restriction), but the run
        itself stays exact."""
        rows = sparse_rows(n_seconds=120)
        engine = build_engine(rows, shards=2, parallel="fork")
        gateway = GatewayServer(engine)
        registered = gateway.register(SQL, name="q", shards=2)
        gateway.step(1)
        assert registered.runtime.demote("not possible") is False
        assert not registered.runtime.demoted
        while gateway.step(1):
            pass
        oracle = run_engine(build_engine(rows, incremental=False), SQL)
        assert snapshot(registered) == oracle
