"""Tests for BOOTOX: naming, direct mapping, implicit FKs, keyword
discovery, alignment and quality verification."""

import pytest

from repro.bootox import (
    DirectMapper,
    KeywordMapper,
    ProvenanceCatalog,
    align,
    apply_implicit_keys,
    camel_case,
    class_name_for_table,
    conservativity_violations,
    discover_implicit_keys,
    match_classes,
    property_name_for_column,
    verify_deployment,
)
from repro.mappings import Unfolder
from repro.queries import UnionOfConjunctiveQueries
from repro.ontology import (
    AtomicClass,
    Ontology,
    SubClassOf,
    check_owl2ql,
)
from repro.queries import ClassAtom, ConjunctiveQuery, PropertyAtom
from repro.rdf import IRI, Namespace, Variable
from repro.relational import Column, Database, ForeignKey, Schema, SQLType, Table

NS = Namespace("http://boot.test/onto#")


def plant_schema():
    schema = Schema("plant")
    schema.add(
        Table(
            "countries",
            [Column("cid", SQLType.INTEGER), Column("name", SQLType.TEXT)],
            primary_key=("cid",),
        )
    )
    schema.add(
        Table(
            "gas_turbines",
            [
                Column("tid", SQLType.INTEGER),
                Column("model", SQLType.TEXT),
                Column("year", SQLType.INTEGER),
                Column("cid", SQLType.INTEGER),
            ],
            primary_key=("tid",),
            foreign_keys=[ForeignKey(("cid",), "countries", ("cid",))],
        )
    )
    return schema


class TestNaming:
    @pytest.mark.parametrize(
        "table,expected",
        [
            ("gas_turbines", "GasTurbine"),
            ("assemblies", "Assembly"),
            ("countries", "Country"),
            ("sensors", "Sensor"),
            ("EQUIP", "Equip"),
            ("service_events", "ServiceEvent"),
        ],
    )
    def test_class_names(self, table, expected):
        assert class_name_for_table(table) == expected

    def test_property_names(self):
        assert property_name_for_column("serial_number") == "hasSerialNumber"
        assert property_name_for_column("cid", "Country") == "hasCountry"
        assert property_name_for_column("assembly_id", "Assembly") == "hasAssembly"

    def test_camel_case(self):
        assert camel_case("a_b_c") == "ABC"
        assert camel_case("temp_sensor", capitalize_first=False) == "tempSensor"


class TestDirectMapper:
    def bootstrap(self):
        return DirectMapper(NS).bootstrap_schema(plant_schema(), "plant")

    def test_classes_created(self):
        result = self.bootstrap()
        assert NS.GasTurbine in result.ontology.classes
        assert NS.Country in result.ontology.classes

    def test_data_properties_with_domains(self):
        result = self.bootstrap()
        assert NS.hasModel in result.ontology.data_properties
        assert NS.hasYear in result.ontology.data_properties

    def test_fk_becomes_object_property(self):
        result = self.bootstrap()
        assert NS.hasCountry in result.ontology.object_properties

    def test_profile_conformant(self):
        result = self.bootstrap()
        assert check_owl2ql(result.ontology).conformant

    def test_mappings_unfold_and_execute(self):
        result = self.bootstrap()
        db = Database(plant_schema())
        db.insert("countries", [(1, "Germany")])
        db.insert("gas_turbines", [(7, "SGT-400", 2008, 1)])
        x, y = Variable("x"), Variable("y")
        cq = ConjunctiveQuery(
            (x, y),
            (
                ClassAtom(NS.GasTurbine, x),
                PropertyAtom(NS.hasCountry, x, y),
            ),
        )
        unfolder = Unfolder(
            result.mappings,
            primary_keys={"gas_turbines": ("tid",), "countries": ("cid",)},
        )
        unfolding = unfolder.unfold(UnionOfConjunctiveQueries((cq,)))
        assert unfolding.fleet_size == 1
        rows = db.query(unfolding.sql())
        assert len(rows) == 1
        assert rows[0][0].endswith("gas_turbines/7")
        assert rows[0][1].endswith("countries/1")

    def test_table_without_pk_skipped_with_warning(self):
        schema = Schema("s")
        schema.add(Table("nokey", [Column("a")]))
        result = DirectMapper(NS).bootstrap_schema(schema, "s")
        assert result.warnings
        assert not result.mappings.assertions

    def test_stream_bootstrap(self):
        from repro.siemens import measurement_stream_schema

        result = DirectMapper(NS).bootstrap_stream(
            "S_Msmt", measurement_stream_schema(), "ms"
        )
        assert NS.hasVal in result.ontology.data_properties
        stream_maps = [m for m in result.mappings if m.is_stream]
        assert len(stream_maps) == 2  # val and failure

    def test_merge(self):
        a = self.bootstrap()
        b = DirectMapper(NS).bootstrap_stream(
            "S_Msmt",
            __import__("repro.siemens", fromlist=["measurement_stream_schema"])
            .measurement_stream_schema(),
            "ms",
        )
        merged = a.merge(b)
        assert NS.hasVal in merged.ontology.data_properties
        assert NS.GasTurbine in merged.ontology.classes


class TestImplicitKeys:
    def database(self):
        schema = Schema("legacy")
        schema.add(
            Table(
                "EQUIP",
                [Column("EQ_NO", SQLType.TEXT), Column("SITE", SQLType.TEXT)],
                primary_key=("EQ_NO",),
            )
        )
        schema.add(
            Table(
                "MEASPOINT",
                [
                    Column("MP_NO", SQLType.TEXT),
                    Column("EQ_NO", SQLType.TEXT),
                    Column("NOTE", SQLType.TEXT),
                ],
                primary_key=("MP_NO",),
            )
        )
        db = Database(schema)
        db.insert("EQUIP", [("E1", "a"), ("E2", "b")])
        db.insert(
            "MEASPOINT",
            [("M1", "E1", "zzz"), ("M2", "E1", "yyy"), ("M3", "E2", "xxx")],
        )
        return db

    def test_inclusion_found(self):
        keys = discover_implicit_keys(self.database())
        best = keys[0]
        assert (best.table, best.column) == ("MEASPOINT", "EQ_NO")
        assert best.referenced_table == "EQUIP"
        assert best.containment == 1.0
        assert best.confidence > 0.8

    def test_non_contained_column_not_reported(self):
        keys = discover_implicit_keys(self.database())
        assert not any(k.column == "NOTE" for k in keys)

    def test_apply_adds_fks(self):
        db = self.database()
        keys = discover_implicit_keys(db)
        added = apply_implicit_keys(db.schema, keys)
        assert added == 1
        fks = db.schema["MEASPOINT"].foreign_keys
        assert fks and fks[0].referenced_table == "EQUIP"

    def test_apply_idempotent(self):
        db = self.database()
        keys = discover_implicit_keys(db)
        apply_implicit_keys(db.schema, keys)
        assert apply_implicit_keys(db.schema, keys) == 0


class TestKeywordMapper:
    def database(self):
        schema = plant_schema()
        db = Database(schema)
        db.insert("countries", [(1, "Germany"), (2, "Norway")])
        db.insert(
            "gas_turbines",
            [
                (1, "Albatros", 2008, 1),
                (2, "Albatros", 2009, 2),
                (3, "Phoenix", 2010, 1),
            ],
        )
        return db

    def test_find_hits(self):
        mapper = KeywordMapper(self.database())
        hits = mapper.find_hits("albatros")
        assert any(
            h.table == "gas_turbines" and h.column == "model" for h in hits
        )

    def test_join_tree_connects_tables(self):
        mapper = KeywordMapper(self.database())
        tree = mapper.join_tree({"gas_turbines", "countries"})
        assert tree.tables == {"gas_turbines", "countries"}
        assert len(tree.joins) == 1

    def test_discover_generalises_examples(self):
        db = self.database()
        mapper = KeywordMapper(db)
        mapping = mapper.discover(
            NS.Turbine,
            [{"albatros", "germany"}, {"albatros", "norway"}],
            source_name="plant",
        )
        assert mapping is not None
        sql = str(mapping.source)
        assert "gas_turbines" in sql
        rows = db.query(sql)
        assert rows  # candidate query returns example rows

    def test_discover_fails_without_hits(self):
        mapper = KeywordMapper(self.database())
        assert mapper.discover(NS.Turbine, [{"nonexistentkeyword"}]) is None


class TestAlignment:
    def ontologies(self):
        left = Ontology()
        left.declare_class(IRI("urn:l#Turbine"))
        left.declare_class(IRI("urn:l#GasTurbine"))
        left.add(
            SubClassOf(
                AtomicClass(IRI("urn:l#GasTurbine")),
                AtomicClass(IRI("urn:l#Turbine")),
            )
        )
        right = Ontology()
        right.declare_class(IRI("urn:r#Turbine"))
        right.declare_class(IRI("urn:r#WindTurbine"))
        right.add(
            SubClassOf(
                AtomicClass(IRI("urn:r#WindTurbine")),
                AtomicClass(IRI("urn:r#Turbine")),
            )
        )
        return left, right

    def test_match_classes(self):
        left, right = self.ontologies()
        matches = match_classes(left, right)
        pairs = {(m.left.local_name, m.right.local_name) for m in matches}
        assert ("Turbine", "Turbine") in pairs

    def test_align_accepts_safe_correspondences(self):
        left, right = self.ontologies()
        result = align(left, right)
        assert any(c.left.local_name == "Turbine" for c in result.accepted)
        # merged ontology entails nothing new inside each source
        assert not conservativity_violations(
            result.merged, [], left.classes
        )

    def test_conservativity_rejects_collapsing_correspondence(self):
        left = Ontology()
        a = left.declare_class(IRI("urn:l#Pump"))
        b = left.declare_class(IRI("urn:l#Compressor"))
        right = Ontology()
        c = right.declare_class(IRI("urn:r#PumpCompressor"))
        # equating both left classes with the same right class would make
        # Pump ⊑ Compressor — a new subsumption inside `left`
        violations = conservativity_violations(
            _merge(left, right),
            [
                SubClassOf(a, c),
                SubClassOf(c, a),
                SubClassOf(b, c),
                SubClassOf(c, b),
            ],
            left.classes,
        )
        assert (IRI("urn:l#Pump"), IRI("urn:l#Compressor")) in violations


def _merge(a, b):
    merged = Ontology()
    merged.extend(a.axioms)
    merged.extend(b.axioms)
    merged.classes |= a.classes | b.classes
    return merged


class TestQualityAndProvenance:
    def test_verify_clean_deployment(self):
        result = DirectMapper(NS).bootstrap_schema(plant_schema(), "plant")
        report = verify_deployment(result.ontology, result.mappings)
        assert report.profile_conformant
        assert not report.broken_mappings
        assert report.mapping_count == len(result.mappings)
        assert "OK" in report.summary() or "ISSUES" in report.summary()

    def test_uncovered_workload_detected(self):
        result = DirectMapper(NS).bootstrap_schema(plant_schema(), "plant")
        report = verify_deployment(
            result.ontology, result.mappings, workload_terms={NS.NotMapped}
        )
        assert NS.NotMapped in report.uncovered_workload_terms
        assert not report.ok

    def test_provenance_catalog(self):
        result = DirectMapper(NS).bootstrap_schema(plant_schema(), "plant")
        catalog = ProvenanceCatalog(result.mappings)
        records = catalog.for_predicate(NS.GasTurbine)
        assert records and records[0].tables == ("gas_turbines",)
        assert records[0].source_name == "plant"
        assert not catalog.stream_predicates()
