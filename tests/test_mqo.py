"""Differential tests: shared-subplan (MQO) execution ≡ private execution.

The MQO subsystem's correctness bar is the same as sharding's and the
pane subsystem's: for every mix of concurrently registered queries, every
shard count and every register/deregister order, executing with
``mqo=True`` must produce **byte-identical** ``WindowResult`` sequences
to fully private execution.  Sharing is memoizing — a miss recomputes
locally — so equality is the single property that proves the subsystem.
"""

import itertools
import random

import pytest

import cqgen
from cqgen import SCHEMA, build_engine, random_family, snapshot
from repro.exastream import (
    GatewayServer,
    Scheduler,
    StreamEngine,
    plan_sql,
    plan_signature,
)
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet
from repro.streams import ListSource, Stream


def measurement_rows(n_seconds=120, n_sensors=6):
    """This suite's default workload size over the shared generator."""
    return cqgen.measurement_rows(n_seconds, n_sensors)


def run_concurrently(rows, sqls, mqo, shards=1, incremental=True):
    """Register every query on one gateway, run to exhaustion, snapshot."""
    engine = build_engine(
        rows, mqo=mqo, shards=shards, incremental=incremental
    )
    out, gateway = cqgen.run_concurrently(sqls, engine, shards=shards)
    return out, gateway, engine


def assert_differential(sqls, rows=None, shards=1, incremental=True):
    if rows is None:
        rows = measurement_rows()
    shared, gateway, engine = run_concurrently(
        rows, sqls, True, shards, incremental
    )
    private, _, _ = run_concurrently(rows, sqls, False, shards, incremental)
    assert shared == private
    assert any(len(results) > 0 for results in shared)
    return shared, gateway, engine


AGG = (
    "SELECT w.sid AS s, AVG(w.val * 9 / 5 + 32) AS f, COUNT(*) AS n "
    "FROM timeSlidingWindow(S, {r}, {s}) AS w, sensors AS t "
    "WHERE w.sid = t.sid AND t.kind = 'temp' AND w.val > 51 "
    "GROUP BY w.sid{having}"
)


def variant(r=20, s=5, threshold=None):
    having = f" HAVING AVG(w.val * 9 / 5 + 32) > {threshold}" if threshold else ""
    return AGG.format(r=r, s=s, having=having)


class TestSignature:
    def _sig(self, sql, engine=None):
        engine = engine or build_engine(measurement_rows(20))
        return plan_signature(plan_sql(sql, engine, name="q"))

    def test_having_variants_share_both_tiers(self):
        a = self._sig(variant(threshold=60))
        b = self._sig(variant(threshold=90))
        c = self._sig(variant())
        assert a.relation_key == b.relation_key == c.relation_key
        assert a.aggregate_key == b.aggregate_key == c.aggregate_key
        assert a.aggregate_key is not None

    def test_alias_renaming_is_normalized_away(self):
        a = self._sig(
            "SELECT w.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 20, 5) AS w, sensors AS t "
            "WHERE w.sid = t.sid GROUP BY w.sid"
        )
        b = self._sig(
            "SELECT x.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 20, 5) AS x, sensors AS meta "
            "WHERE x.sid = meta.sid GROUP BY x.sid"
        )
        assert a.relation_key == b.relation_key
        assert a.aggregate_key == b.aggregate_key

    def test_filter_order_is_normalized_away(self):
        a = self._sig(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w "
            "WHERE w.val > 51 AND w.sid < 4"
        )
        b = self._sig(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w "
            "WHERE w.sid < 4 AND w.val > 51"
        )
        assert a.relation_key == b.relation_key

    def test_different_filters_do_not_share(self):
        a = self._sig(variant())
        b = self._sig(variant().replace("w.val > 51", "w.val > 52"))
        assert a.relation_key != b.relation_key

    def test_different_window_grids_do_not_share(self):
        assert (
            self._sig(variant(r=20)).relation_key
            != self._sig(variant(r=40)).relation_key
        )

    def test_different_grouping_shares_relation_tier_only(self):
        a = self._sig(variant())
        b = self._sig(
            "SELECT AVG(w.val * 9 / 5 + 32) AS f, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 20, 5) AS w, sensors AS t "
            "WHERE w.sid = t.sid AND t.kind = 'temp' AND w.val > 51"
        )
        assert a.relation_key == b.relation_key
        assert a.aggregate_key != b.aggregate_key

    def test_sequence_udf_has_no_aggregate_tier(self):
        sig = self._sig(
            "SELECT w.sid AS s, SLOPE(w.ts, w.val) AS trend "
            "FROM timeSlidingWindow(S, 20, 5) AS w GROUP BY w.sid"
        )
        assert sig is not None
        assert sig.aggregate_key is None

    def test_two_stream_join_carries_side_signatures(self):
        engine = StreamEngine()
        for name in ("A", "B", "C"):
            engine.register_stream(
                ListSource(Stream(name, SCHEMA), measurement_rows(20))
            )

        def sig(sql):
            return plan_signature(plan_sql(sql, engine, name="j"))

        base = (
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(A, 20, 5) AS a, "
            "timeSlidingWindow(B, 20, 5) AS b WHERE a.sid = b.sid"
        )
        signature = sig(base)
        assert signature is not None
        assert len(signature.sides) == 2
        # per-stream pane-join state interchanges only within one side
        assert signature.sides[0].key != signature.sides[1].key
        # the pane-pair partials are runtime-local: no aggregate tier
        assert signature.aggregate_key is None
        # a query joining A against a *different* partner stream still
        # shares A's side (but not the partner's)
        other = sig(
            base.replace("timeSlidingWindow(B", "timeSlidingWindow(C")
        )
        assert other.relation_key != signature.relation_key
        assert other.sides[0] == signature.sides[0]
        assert other.sides[1] != signature.sides[1]
        # a side filter changes only that side's signature
        filtered = sig(base + " AND a.val > 50")
        assert filtered.sides[0] != signature.sides[0]
        assert filtered.sides[1] == signature.sides[1]

    def test_three_stream_join_is_ineligible(self):
        engine = StreamEngine()
        for name in ("A", "B", "C"):
            engine.register_stream(
                ListSource(Stream(name, SCHEMA), measurement_rows(20))
            )
        plan = plan_sql(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(A, 20, 5) AS a, "
            "timeSlidingWindow(B, 20, 5) AS b, timeSlidingWindow(C, 20, 5) AS c "
            "WHERE a.sid = b.sid AND b.sid = c.sid",
            engine,
            name="j",
        )
        assert plan_signature(plan) is None


class TestDifferential:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_identical_queries(self, shards):
        shared, _, _ = assert_differential([variant()] * 5, shards=shards)
        # every copy produced the same windows
        assert all(results == shared[0] for results in shared)

    @pytest.mark.parametrize("shards", [1, 2])
    def test_having_threshold_variants(self, shards):
        sqls = [variant(threshold=t) for t in (55, 60, 65, 70)] + [variant()]
        assert_differential(sqls, shards=shards)

    def test_sharing_actually_engages(self):
        """Guard against the registry silently never matching."""
        sqls = [variant(threshold=t) for t in (55, 60, 65, 70)]
        shared, gateway, engine = run_concurrently(
            measurement_rows(), sqls, True
        )
        assert gateway.mqo is not None
        assert gateway.mqo.stats.partial_hits > 0
        per_query = [engine.metrics.query(f"q{i}") for i in range(len(sqls))]
        built = [m.panes_built for m in per_query]
        # exactly one subscriber built each pane; the rest were served
        assert sum(1 for b in built if b == 0) == len(sqls) - 1
        assert sum(m.mqo_partial_hits for m in per_query) > 0

    def test_relation_tier_shares_across_groupings(self):
        """Same prefix, different GROUP BY: pane relations interchange."""
        sqls = [
            variant(),
            "SELECT AVG(w.val * 9 / 5 + 32) AS f, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 20, 5) AS w, sensors AS t "
            "WHERE w.sid = t.sid AND t.kind = 'temp' AND w.val > 51",
        ]
        shared, gateway, engine = run_concurrently(
            measurement_rows(), sqls, True
        )
        private, _, _ = run_concurrently(measurement_rows(), sqls, False)
        assert shared == private
        assert gateway.mqo.stats.relation_hits > 0

    def test_alias_variants_interchange_relations(self):
        sqls = [
            "SELECT w.sid AS s, SUM(w.val) AS total "
            "FROM timeSlidingWindow(S, 20, 5) AS w, sensors AS t "
            "WHERE w.sid = t.sid GROUP BY w.sid",
            "SELECT x.sid AS s, SUM(x.val) AS total "
            "FROM timeSlidingWindow(S, 20, 5) AS x, sensors AS meta "
            "WHERE x.sid = meta.sid GROUP BY x.sid",
        ]
        shared, gateway, _ = run_concurrently(measurement_rows(), sqls, True)
        private, _, _ = run_concurrently(measurement_rows(), sqls, False)
        assert shared == private
        # different aliases, same canonical signature: full tier-2 sharing
        assert gateway.mqo.stats.partial_hits > 0

    def test_recompute_plans_share_window_relations(self):
        """Sequence-UDF (non-decomposable) variants share the joined
        window relation on the recompute path."""
        base = (
            "SELECT w.sid AS s, SLOPE(w.ts, w.val) AS trend "
            "FROM timeSlidingWindow(S, 20, 5) AS w, sensors AS t "
            "WHERE w.sid = t.sid GROUP BY w.sid"
        )
        shared, gateway, _ = run_concurrently(
            measurement_rows(), [base, base], True
        )
        private, _, _ = run_concurrently(measurement_rows(), [base, base], False)
        assert shared == private
        assert shared[0] == shared[1]
        assert gateway.mqo.stats.relation_hits > 0

    def test_incremental_disabled_still_differential(self):
        sqls = [variant(threshold=t) for t in (55, 65)]
        assert_differential(sqls, incremental=False)


class TestRandomizedFamilies:
    """Seeded prefix-sharing CQ families from the shared harness."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_families(self, seed):
        rng = random.Random(4000 + seed)
        sqls = random_family(rng)
        shards = 1 + (seed % 2)
        assert_differential(sqls, shards=shards)


class TestMidFlight:
    """Register and deregister queries while the executor is mid-stream;
    the joiners fold into existing pipelines at the next boundary."""

    def _run(self, mqo):
        rows = measurement_rows()
        engine = build_engine(rows, mqo=mqo)
        gateway = GatewayServer(engine)
        results = {}
        a = gateway.register(variant(threshold=55), name="a")
        b = gateway.register(variant(threshold=65), name="b")
        gateway.step(6)
        # c joins mid-flight and shares the live pipeline from here on
        c = gateway.register(variant(), name="c")
        gateway.step(6)
        results["a"] = snapshot(a)
        gateway.deregister("a")
        gateway.step(4)
        d = gateway.register(variant(threshold=75), name="d")
        while gateway.step():
            pass
        for name, q in (("b", b), ("c", c), ("d", d)):
            results[name] = snapshot(q)
        for name in ("b", "c", "d"):
            gateway.deregister(name)
        return results, gateway

    def test_mid_flight_join_and_leave(self):
        shared, gateway = self._run(True)
        private, _ = self._run(False)
        assert shared == private
        assert all(len(v) > 0 for v in shared.values())
        assert gateway.mqo.pipeline_count == 0  # all released

    def test_mid_flight_sharing_engages(self):
        shared, gateway = self._run(True)
        assert gateway.mqo.stats.partial_hits > 0


class TestSiemensDifferential:
    """All 20 deployment diagnostic tasks, registered concurrently."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(turbines=4, plants=2))

    def _run_all(self, fleet, mqo, shards=1):
        dep = deploy(
            fleet=fleet, stream_duration=20, mqo=mqo, shards=shards
        )
        with dep.session() as session:
            handles = [
                session.submit(task.starql, name=f"t{task.task_id}")
                for task in diagnostic_catalog()
            ]
            while session.step(1):
                pass
            return {
                handle.registered.name: snapshot(handle.registered)
                for handle in handles
            }

    @pytest.mark.parametrize("shards", [1, 2])
    def test_all_diagnostic_tasks_equal(self, fleet, shards):
        shared = self._run_all(fleet, True, shards)
        private = self._run_all(fleet, False, shards)
        assert shared.keys() == private.keys()
        for name in shared:
            assert shared[name] == private[name], name
        assert any(len(v) > 0 for v in shared.values())

    def test_duplicate_task_fleet_shares(self, fleet):
        """Concurrent variants of one diagnostic task — the Siemens
        '50 copies of the same task' shape — share one pipeline."""
        dep = deploy(fleet=fleet, stream_duration=20, mqo=True)
        task2 = diagnostic_catalog()[1]
        with dep.session() as session:
            for i in range(6):
                session.submit(task2.starql, name=f"copy{i}")
            while session.step(1):
                pass
        assert dep.gateway.mqo is not None
        assert dep.gateway.mqo.stats.partial_hits > 0


class TestGatewayTeardown:
    """Deregistering shared-pipeline subscribers in every order releases
    pipelines and readers exactly once."""

    def _gateway(self, n=3):
        rows = measurement_rows(60)
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        names = [f"q{i}" for i in range(n)]
        for i, name in enumerate(names):
            gateway.register(variant(threshold=55 + 5 * i), name=name)
        return gateway, names

    def test_every_deregistration_order(self):
        for order in itertools.permutations(range(3)):
            gateway, names = self._gateway(3)
            gateway.step(4)
            for index in order:
                gateway.deregister(names[index])
            assert gateway.mqo.pipeline_count == 0
            assert gateway.shared_reader_count == 0
            assert gateway.queries == []

    def test_unknown_deregister_raises(self):
        gateway, names = self._gateway(2)
        with pytest.raises(KeyError):
            gateway.deregister("nope")
        gateway.deregister(names[0])
        with pytest.raises(KeyError):
            gateway.deregister(names[0])  # exactly once
        gateway.deregister(names[1])
        assert gateway.mqo.pipeline_count == 0

    def test_lone_survivor_keeps_producing(self):
        rows = measurement_rows()
        # reference: the survivor running alone, fully private
        engine = build_engine(rows, mqo=False)
        gateway = GatewayServer(engine)
        solo = gateway.register(variant(threshold=60), name="solo")
        while gateway.step():
            pass
        reference = snapshot(solo)

        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        survivor = gateway.register(variant(threshold=60), name="s")
        others = [
            gateway.register(variant(threshold=t), name=f"o{t}")
            for t in (55, 70)
        ]
        gateway.step(5)
        for other in others:
            gateway.deregister(other.name)
        while gateway.step():
            pass
        assert snapshot(survivor) == reference
        assert gateway.mqo.pipeline_count > 0  # survivor's pipeline lives
        gateway.deregister("s")
        assert gateway.mqo.pipeline_count == 0

    def test_scoped_sharded_pipelines_release(self):
        rows = measurement_rows()
        engine = build_engine(rows, shards=2)
        gateway = GatewayServer(engine)
        a = gateway.register(variant(threshold=55), name="a", shards=2)
        b = gateway.register(variant(threshold=65), name="b", shards=2)
        while gateway.step():
            pass
        assert snapshot(a) and snapshot(b)
        gateway.deregister("a")
        gateway.deregister("b")
        assert gateway.mqo.pipeline_count == 0


class TestSchedulerAccounting:
    def test_shared_pipeline_weighs_once(self):
        rows = measurement_rows(40)
        engine = build_engine(rows)
        scheduler = Scheduler(2)
        gateway = GatewayServer(engine, scheduler=scheduler)
        gateway.register(variant(threshold=55), name="a")
        shared = sum(
            p.cost
            for w in scheduler.workers
            for p in w.placements
            if p.query.startswith("mqo::")
        )
        residual = sum(p.cost for p in scheduler.placements_for("a"))
        assert shared > 0 and residual > 0
        for i, t in enumerate((60, 65, 70)):
            gateway.register(variant(threshold=t), name=f"v{i}")
        # three more subscribers add only residual load: the pipeline
        # prefix weighs on the cluster once, not once per query
        assert scheduler.total_load() == pytest.approx(shared + 4 * residual)
        pipeline_queries = {
            p.query
            for w in scheduler.workers
            for p in w.placements
            if p.query.startswith("mqo::")
        }
        assert len(pipeline_queries) == 1
        for name in ("a", "v0", "v1", "v2"):
            gateway.deregister(name)
        assert scheduler.total_load() == pytest.approx(0.0)

    def test_private_gateway_accounts_per_query(self):
        rows = measurement_rows(40)
        engine = build_engine(rows, mqo=False)  # mqo escape hatch
        scheduler = Scheduler(2)
        gateway = GatewayServer(engine, scheduler=scheduler)
        assert gateway.mqo is None
        gateway.register(variant(threshold=55), name="a")
        one = scheduler.total_load()
        gateway.register(variant(threshold=60), name="b")
        assert scheduler.total_load() > one * 1.5  # full per-query weight
        gateway.deregister("a")
        gateway.deregister("b")
        assert scheduler.total_load() == pytest.approx(0.0)


class TestBatchDemandRefcount:
    PANE_SQL = (
        "SELECT w.sid AS s, SUM(w.val) AS total "
        "FROM timeSlidingWindow(S, 20, 5) AS w GROUP BY w.sid"
    )
    RECOMPUTE_SQL = (  # projection: batch-driven
        "SELECT w.ts AS t, w.val AS v FROM timeSlidingWindow(S, 20, 5) AS w"
    )

    def test_survivor_regains_no_batch_property(self):
        rows = measurement_rows(200)
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        pane = gateway.register(self.PANE_SQL, name="pane")
        gateway.register(self.RECOMPUTE_SQL, name="batchy")
        gateway.step(5)
        reader = next(iter(pane.runtime.readers.values()))
        assert reader.batch_demand == 1  # the recompute query's reference
        gateway.deregister("batchy")
        assert reader.batch_demand == 0  # released through the gateway
        materialised = engine.cache.stats.materialised_tuples
        gateway.step(10)
        # no batch assembly happened for the surviving pane query
        assert engine.cache.stats.materialised_tuples == materialised
        assert pane.sink.accepted > 10

    def test_demand_is_counted_not_latched(self):
        rows = measurement_rows(100)
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        gateway.register(self.PANE_SQL, name="pane")
        r1 = gateway.register(self.RECOMPUTE_SQL, name="r1")
        r2 = gateway.register(self.RECOMPUTE_SQL, name="r2")
        reader = next(iter(r1.runtime.readers.values()))
        assert reader.batch_demand == 2
        gateway.deregister("r1")
        assert reader.batch_demand == 1  # r2 still needs batches
        gateway.deregister("r2")
        assert reader.batch_demand == 0
        assert r2 is not None

    def test_pane_break_reacquires_releasable_demand(self):
        """A permanently broken pane path re-demands batches (so pulses
        assemble + cache again) — and that demand is still released on
        deregistration, not latched forever."""
        from repro.streams import StreamSource

        rows = [(float(t), t % 4, 50.0 + t % 7) for t in range(120)]
        rows[60], rows[68] = rows[68], rows[60]  # genuine late arrival
        reference_rows = list(rows)

        def run(mqo):
            engine = StreamEngine(mqo=mqo)
            engine.register_stream(
                StreamSource(Stream("S", SCHEMA), lambda: iter(rows))
            )
            gateway = GatewayServer(engine)
            q = gateway.register(self.PANE_SQL, name="pane")
            while gateway.step():
                pass
            return snapshot(q), q, gateway

        shared, q, gateway = run(True)
        reader = next(iter(q.runtime.readers.values()))
        assert reader.pane_broken
        assert reader.batch_demand == 1  # reacquired after the break
        gateway.deregister("pane")
        assert reader.batch_demand == 0  # and releasable

        # the broken-pane run still matches a fully private recompute run
        engine = StreamEngine(mqo=False, incremental=False)
        engine.register_stream(
            StreamSource(Stream("S", SCHEMA), lambda: iter(reference_rows))
        )
        gateway = GatewayServer(engine)
        q = gateway.register(self.PANE_SQL, name="pane")
        while gateway.step():
            pass
        assert shared == snapshot(q)


class TestRegistrationCost:
    """Registering the Nth query must not rescan the N-1 live ones."""

    def test_sharing_analysis_is_linear_in_registrations(self, monkeypatch):
        import repro.analysis.sharing as sharing

        calls = {"signature": 0, "cq": 0}
        real_sig, real_cq = sharing.plan_signature, sharing.plan_as_cq

        def counted_sig(plan):
            calls["signature"] += 1
            return real_sig(plan)

        def counted_cq(plan):
            calls["cq"] += 1
            return real_cq(plan)

        monkeypatch.setattr(sharing, "plan_signature", counted_sig)
        monkeypatch.setattr(sharing, "plan_as_cq", counted_cq)

        n = 12
        gateway = GatewayServer(build_engine())
        for i in range(n):
            r, s = (5, 5) if i % 2 else (20, 5)
            gateway.register(
                f"SELECT w.sid AS s, COUNT(*) AS n FROM"
                f" timeSlidingWindow(S, {r}, {s}) AS w"
                f" WHERE w.val > {40 + (i % 2)} GROUP BY w.sid",
                name=f"q{i}",
            )
        # The sharing index gives each registration constant analysis
        # work: one signature + one CQ encoding for check_sharing, the
        # same again for index_plan.  The pre-index peer scan re-derived
        # every live query's signature and CQ per registration (~n^2/2).
        assert calls["signature"] <= 2 * n
        assert calls["cq"] <= 2 * n
        # And the diagnostics still fire: later same-grid queries see
        # their sharing peers through the index.
        last = gateway.query("q10")
        assert any(d.code == "ANA030" for d in last.diagnostics)
