"""Integration tests: the Siemens scenario and the OPTIQUE platform facade."""

import pytest

# These modules predate (and deliberately cover) the deprecated batch
# wrappers -- run(max_windows=/on_result=/keep_results=) compat stays
# tested without warning noise in tier-1 output.
pytestmark = pytest.mark.filterwarnings(
    r"ignore:.*run\(\) is deprecated:DeprecationWarning"
)


from repro.optique import OptiquePlatform
from repro.rdf import Namespace
from repro.siemens import (
    Dashboard,
    FleetConfig,
    SIE,
    build_siemens_mappings,
    build_siemens_ontology,
    deploy,
    diagnostic_catalog,
    generate_fleet,
)
from repro.ontology import check_owl2ql


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(FleetConfig(turbines=4, plants=2, correlated_pairs=2))


@pytest.fixture(scope="module")
def deployment(small_fleet):
    return deploy(fleet=small_fleet, stream_duration=25)


class TestSiemensOntology:
    def test_hundreds_of_terms(self):
        onto = build_siemens_ontology()
        assert onto.term_count() >= 150
        assert len(onto.axioms) >= 150

    def test_profile_conformant(self):
        assert check_owl2ql(build_siemens_ontology()).conformant

    def test_hierarchies_present(self):
        from repro.ontology import AtomicClass, Reasoner

        r = Reasoner(build_siemens_ontology())
        assert r.is_subclass_of(
            AtomicClass(SIE.HeavyDutyGasTurbine), AtomicClass(SIE.Turbine)
        )
        assert r.is_subclass_of(
            AtomicClass(SIE.AnalogTemperatureSensor), AtomicClass(SIE.Sensor)
        )


class TestGenerator:
    def test_deterministic(self):
        a = generate_fleet(FleetConfig(turbines=3, plants=2))
        b = generate_fleet(FleetConfig(turbines=3, plants=2))
        assert a.sensor_ids == b.sensor_ids
        assert a.ramp_sensors == b.ramp_sensors
        rows_a = a.measurement_source(a.sensor_ids[:5], duration_seconds=5)
        rows_b = b.measurement_source(b.sensor_ids[:5], duration_seconds=5)
        assert list(rows_a) == list(rows_b)

    def test_cardinalities(self, small_fleet):
        cfg = small_fleet.config
        assert len(small_fleet.turbine_ids) == cfg.turbines
        assert len(small_fleet.sensor_ids) == cfg.sensor_count
        assert small_fleet.plant_db.row_count("sensors") == cfg.sensor_count

    def test_paper_scale_configuration(self):
        cfg = FleetConfig()
        assert cfg.turbines == 950
        assert cfg.sensor_count > 100_000

    def test_ramp_pattern_injected(self, small_fleet):
        sid = small_fleet.ramp_sensors[0]
        source = small_fleet.measurement_source(
            [sid], duration_seconds=25, ramp_start=5, ramp_length=10
        )
        rows = list(source)
        ramp = [r for r in rows if 5 <= r[0] < 15]
        values = [r[2] for r in ramp]
        assert values == sorted(values)
        assert any(r[3] == 1 for r in rows)  # failure flag raised

    def test_correlated_pair(self, small_fleet):
        from repro.streams import exact_pearson

        a, b = small_fleet.correlated[0]
        source = small_fleet.measurement_source([a, b], duration_seconds=30)
        series = {a: [], b: []}
        for _ts, sid, val, _ in source:
            series[sid].append(val)
        assert exact_pearson(series[a], series[b]) > 0.95

    def test_event_source(self, small_fleet):
        events = list(small_fleet.event_source(duration_seconds=60))
        assert events
        assert all(e[1] in small_fleet.turbine_ids for e in events)


class TestCatalog:
    def test_twenty_tasks(self):
        catalog = diagnostic_catalog()
        assert len(catalog) == 20
        assert len({t.task_id for t in catalog}) == 20
        assert len({t.name for t in catalog}) == 20

    def test_all_parse(self):
        from repro.starql import parse_starql

        for task in diagnostic_catalog():
            query = parse_starql(task.starql)
            assert query.windows, task.name

    def test_all_translate_and_register(self, deployment):
        for task in diagnostic_catalog():
            registered, translation = deployment.register_task(
                task.starql, name=f"t{task.task_id}"
            )
            assert translation.fleet_size >= 1, task.name
        assert len(deployment.gateway.queries) == 20

    def test_fig1_task_fires_on_ramp_sensor(self, small_fleet):
        dep = deploy(fleet=small_fleet, stream_duration=25)
        task1 = diagnostic_catalog()[0]
        registered, translation = dep.register_task(task1.starql, name="fig1")
        dep.run(max_windows=20)
        alerted = set()
        for result in registered.results():
            for row in result.rows:
                triple = translation.construct.triples_for(row)[0]
                alerted.add(triple[0].value.rsplit("/", 1)[-1])
        streamed_ramps = {
            s for s in small_fleet.ramp_sensors if s in _streamed(dep)
        }
        assert streamed_ramps <= alerted

    def test_dashboard_collects(self, small_fleet):
        dep = deploy(fleet=small_fleet, stream_duration=25)
        for task in diagnostic_catalog()[:3]:
            dep.register_task(task.starql, name=f"d{task.task_id}")
        dash = Dashboard()
        while dep.gateway.step(on_result=dash.observe, window_limit=8):
            pass
        assert len(dash.panels) == 3
        rendered = dash.render()
        assert "total alerts" in rendered
        for panel in dash.panels:
            assert panel.windows_seen > 0


def _streamed(dep):
    source = dep.engine.stream("S_Msmt")
    return {row[1] for row in source.take(10_000)}


class TestOptiquePlatform:
    def test_bootstrap_and_query_lifecycle(self, small_fleet):
        platform = OptiquePlatform()
        NS = Namespace("http://siemens.com/ontology#")
        from repro.siemens import plant_schema

        report = platform.bootstrap_from(
            plant_schema(), small_fleet.plant_db, "plant", NS
        )
        assert report.profile_conformant
        assert platform.ontology.term_count() > 10
        catalog = platform.provenance()
        assert len(catalog) == len(platform.mappings)

    def test_curated_deployment_runs_tasks(self, small_fleet):
        platform = OptiquePlatform(
            ontology=build_siemens_ontology(),
            mappings=build_siemens_mappings(),
        )
        platform.attach_database("plant", small_fleet.plant_db)
        platform.register_stream(
            small_fleet.measurement_source(
                small_fleet.sensor_ids[:10] + small_fleet.ramp_sensors[:1],
                duration_seconds=20,
            )
        )
        from repro.siemens.deployment import MONOTONIC_MACRO, FAILURE_MACRO

        platform.register_macro(MONOTONIC_MACRO)
        platform.register_macro(FAILURE_MACRO)
        task = platform.register_task(
            diagnostic_catalog()[0].starql, name="fig1"
        )
        platform.run(max_windows=18)
        assert task.fleet_size >= 1
        assert platform.dashboard.panel("fig1").windows_seen > 0
        assert platform.total_fleet_size() >= 1
        # the ramp sensor raises an alert through the full platform stack
        alerts = task.alerts()
        assert any(
            small_fleet.ramp_sensors[0] in str(t[0]) for t in alerts
        )

    def test_verify_reports_workload_coverage(self):
        platform = OptiquePlatform(
            ontology=build_siemens_ontology(),
            mappings=build_siemens_mappings(),
        )
        report = platform.verify(workload_terms={SIE.hasValue, SIE.Sensor})
        assert not report.uncovered_workload_terms
