"""Tests for classification and consistency reasoning."""

import pytest

from repro.ontology import (
    AtomicClass,
    Attribute,
    ClassAssertion,
    DisjointClasses,
    DisjointProperties,
    Existential,
    InconsistentOntologyError,
    Ontology,
    PropertyAssertion,
    Reasoner,
    Role,
    SubClassOf,
    SubPropertyOf,
    Thing,
)
from repro.rdf import IRI


def iri(name):
    return IRI("urn:t#" + name)


def cls(name):
    return AtomicClass(iri(name))


def role(name, inv=False):
    return Role(iri(name), inv)


class TestClassification:
    def build(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("GasTurbine"), cls("Turbine")))
        onto.add(SubClassOf(cls("SteamTurbine"), cls("Turbine")))
        onto.add(SubClassOf(cls("Turbine"), cls("PowerUnit")))
        return Reasoner(onto)

    def test_direct(self):
        r = self.build()
        assert r.is_subclass_of(cls("GasTurbine"), cls("Turbine"))

    def test_transitive(self):
        r = self.build()
        assert r.is_subclass_of(cls("GasTurbine"), cls("PowerUnit"))

    def test_reflexive(self):
        r = self.build()
        assert r.is_subclass_of(cls("Turbine"), cls("Turbine"))

    def test_not_converse(self):
        r = self.build()
        assert not r.is_subclass_of(cls("Turbine"), cls("GasTurbine"))

    def test_thing_is_top(self):
        r = self.build()
        assert r.is_subclass_of(cls("GasTurbine"), Thing())

    def test_superclasses(self):
        r = self.build()
        assert r.superclasses(cls("GasTurbine")) == {cls("Turbine"), cls("PowerUnit")}

    def test_subclasses(self):
        r = self.build()
        assert r.subclasses(cls("Turbine")) == {cls("GasTurbine"), cls("SteamTurbine")}

    def test_classify_all(self):
        hierarchy = self.build().classify()
        assert hierarchy[iri("GasTurbine")] == {iri("Turbine"), iri("PowerUnit")}
        assert hierarchy[iri("PowerUnit")] == set()


class TestRoleReasoning:
    def test_role_hierarchy(self):
        onto = Ontology()
        onto.add(SubPropertyOf(role("hasMainSensor"), role("hasSensor")))
        onto.add(SubPropertyOf(role("hasSensor"), role("hasPart")))
        r = Reasoner(onto)
        assert r.is_subproperty_of(role("hasMainSensor"), role("hasPart"))
        assert not r.is_subproperty_of(role("hasPart"), role("hasMainSensor"))

    def test_inverse_closure(self):
        onto = Ontology()
        onto.add(SubPropertyOf(role("p"), role("q")))
        r = Reasoner(onto)
        # p ⊑ q implies p^- ⊑ q^-
        assert r.is_subproperty_of(role("p", True), role("q", True))

    def test_existential_propagation(self):
        onto = Ontology()
        onto.add(SubPropertyOf(role("p"), role("q")))
        onto.add(SubClassOf(Existential(role("q")), cls("Dom")))
        r = Reasoner(onto)
        # ∃p ⊑ ∃q ⊑ Dom
        assert r.is_subclass_of(Existential(role("p")), cls("Dom"))
        assert r.is_subclass_of(Existential(role("p", True)), Existential(role("q", True)))

    def test_subproperties(self):
        onto = Ontology()
        onto.add(SubPropertyOf(role("a"), role("b")))
        onto.add(SubPropertyOf(role("c"), role("b")))
        r = Reasoner(onto)
        assert role("a") in r.subproperties(role("b"))
        assert role("c") in r.subproperties(role("b"))

    def test_qualified_existential_via_normalisation(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("Turbine"), Existential(role("hasPart"), cls("Assembly"))))
        r = Reasoner(onto)
        # Turbine ⊑ ∃hasPart follows from the encoding
        assert r.is_subclass_of(cls("Turbine"), Existential(role("hasPart")))


class TestConsistency:
    def test_consistent(self):
        onto = Ontology()
        onto.add(DisjointClasses(cls("Turbine"), cls("Sensor")))
        onto.add(ClassAssertion(cls("Turbine"), iri("t1")))
        onto.add(ClassAssertion(cls("Sensor"), iri("s1")))
        assert Reasoner(onto).is_consistent()

    def test_direct_violation(self):
        onto = Ontology()
        onto.add(DisjointClasses(cls("Turbine"), cls("Sensor")))
        onto.add(ClassAssertion(cls("Turbine"), iri("x")))
        onto.add(ClassAssertion(cls("Sensor"), iri("x")))
        with pytest.raises(InconsistentOntologyError):
            Reasoner(onto).check_consistency()

    def test_derived_violation_through_hierarchy(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("GasTurbine"), cls("Turbine")))
        onto.add(DisjointClasses(cls("Turbine"), cls("Sensor")))
        onto.add(ClassAssertion(cls("GasTurbine"), iri("x")))
        onto.add(ClassAssertion(cls("Sensor"), iri("x")))
        assert not Reasoner(onto).is_consistent()

    def test_domain_violation(self):
        onto = Ontology()
        # domain of monitors is Sensor, disjoint with Turbine
        onto.add(SubClassOf(Existential(role("monitors")), cls("Sensor")))
        onto.add(DisjointClasses(cls("Turbine"), cls("Sensor")))
        onto.add(ClassAssertion(cls("Turbine"), iri("x")))
        onto.add(PropertyAssertion(role("monitors"), iri("x"), iri("y")))
        assert not Reasoner(onto).is_consistent()

    def test_range_side(self):
        onto = Ontology()
        onto.add(SubClassOf(Existential(role("monitors", True)), cls("Asset")))
        onto.add(DisjointClasses(cls("Asset"), cls("Sensor")))
        onto.add(ClassAssertion(cls("Sensor"), iri("y")))
        onto.add(PropertyAssertion(role("monitors"), iri("x"), iri("y")))
        assert not Reasoner(onto).is_consistent()

    def test_disjoint_properties_violation(self):
        onto = Ontology()
        onto.add(DisjointProperties(role("p"), role("q")))
        onto.add(PropertyAssertion(role("p"), iri("a"), iri("b")))
        onto.add(PropertyAssertion(role("q"), iri("a"), iri("b")))
        assert not Reasoner(onto).is_consistent()

    def test_disjoint_properties_different_pairs_ok(self):
        onto = Ontology()
        onto.add(DisjointProperties(role("p"), role("q")))
        onto.add(PropertyAssertion(role("p"), iri("a"), iri("b")))
        onto.add(PropertyAssertion(role("q"), iri("a"), iri("c")))
        assert Reasoner(onto).is_consistent()

    def test_attribute_domain(self):
        onto = Ontology()
        attr = Attribute(iri("hasValue"))
        onto.add(SubClassOf(Existential(attr), cls("Sensor")))
        r = Reasoner(onto)
        assert r.is_subclass_of(Existential(attr), cls("Sensor"))
