"""Shared randomized-CQ test harness.

The differential suites (``test_incremental``, ``test_mqo``,
``test_sharded``, ``test_pane_join``) all exercise the same property —
byte-identical :class:`WindowResult` sequences across execution modes —
over the same synthetic measurement workload.  This module owns the
pieces they used to copy-paste:

* the measurement stream schema and deterministic row generator (with
  per-sensor gaps and full outages for sparse/empty-pane scenarios);
* the static sensor-metadata database;
* engine/gateway builders and result snapshot helpers;
* seeded random continuous-query generators — single-stream CQs,
  prefix-sharing CQ families, and two-stream join CQs over
  join-compatible templates (both streams carry the shared ``sid`` key,
  so generated equi-joins always have matching domains).

Everything is deterministic under a caller-provided ``random.Random``.
"""

from repro.exastream import (
    GatewayServer,
    IncrementalDecision,
    IncrementalMode,
    ShardedEngine,
    StreamEngine,
    analyze_incremental,
    plan_sql,
)
from repro.exastream.durability import (
    CheckpointManager,
    FaultInjector,
    SimulatedCrash,
    recover,
)
from repro.relational import Column, Database, Schema, SQLType, Table
from repro.streams import ListSource, Stream, StreamSchema

__all__ = [
    "SCHEMA",
    "SPECS",
    "measurement_rows",
    "adversarial_rows",
    "static_db",
    "build_engine",
    "run_engine",
    "snapshot",
    "run_concurrently",
    "run_checkpointed",
    "recover_and_finish",
    "eligible_tiers",
    "force_tier",
    "random_single_stream_sql",
    "random_family",
    "random_join_sql",
    "random_join_family",
]

SCHEMA = StreamSchema(
    (
        Column("ts", SQLType.REAL),
        Column("sid", SQLType.INTEGER),
        Column("val", SQLType.REAL),
    ),
    time_column="ts",
)

#: overlap factors r/s ∈ {1, 4, 16} on a 5s slide
SPECS = [(5, 5), (20, 5), (80, 5)]


def measurement_rows(
    n_seconds=200,
    n_sensors=6,
    gap_sensor=None,
    gap=(None, None),
    silence=None,
    value_offset=0.0,
    fraction=0.1234567,
):
    """Float-valued measurements; optional per-sensor gap and full outage.

    ``value_offset`` shifts every value, so two calls produce distinct
    but join-compatible streams (same sensors, same timestamps).
    ``fraction=0.0`` yields integer-valued floats — exact under any
    addition order, which the PARTIAL-mode shard recombination (shard
    sums re-added at the merge) relies on for bitwise equality.
    """
    rows = []
    for t in range(n_seconds):
        if silence is not None and silence[0] <= t < silence[1]:
            continue
        for s in range(n_sensors):
            if s == gap_sensor and gap[0] <= t < gap[1]:
                continue
            rows.append(
                (
                    float(t),
                    s,
                    50.0 + ((t * 7 + s * 13) % 23) + fraction + value_offset,
                )
            )
    return rows


def adversarial_rows(
    rng,
    n_seconds=240,
    n_sensors=6,
    skew=2.0,
    burst_period=60,
    burst_duty=0.25,
    burst_hz=4,
    sparse_p=0.2,
    correlated=True,
):
    """Estimator-hostile measurements: the shapes cost models get wrong.

    * **Skewed key cardinality** — sensor ids drawn with weight
      ``1 / (1 + s) ** skew``, so a couple of hot keys dominate while
      the tail keys barely appear (a uniform-distinct assumption
      overestimates group counts and join fan-out).
    * **Bursty/sparse rate** — each ``burst_period`` opens with a
      ``burst_duty`` fraction of dense ``burst_hz`` traffic, then goes
      near-silent (one tuple per second with probability ``sparse_p``),
      so any single sampled rate misrepresents most of the stream.
    * **Correlated filters** — with ``correlated=True`` the value is a
      function of the sensor id (plus noise), so a value filter's
      selectivity differs per key instead of being independent.

    Deterministic under the caller's ``rng``; rows are timestamp-ordered
    like every other generator here.
    """
    weights = [1.0 / (1 + s) ** skew for s in range(n_sensors)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def pick_sensor():
        u = rng.random()
        for s, edge in enumerate(cumulative):
            if u <= edge:
                return s
        return n_sensors - 1

    rows = []
    burst_seconds = max(1, int(burst_period * burst_duty))
    for t in range(n_seconds):
        in_burst = (t % burst_period) < burst_seconds
        count = burst_hz if in_burst else (1 if rng.random() < sparse_p else 0)
        for k in range(count):
            s = pick_sensor()
            if correlated:
                val = 40.0 + s * 5.0 + rng.uniform(0.0, 10.0)
            else:
                val = 50.0 + rng.uniform(0.0, 23.0)
            rows.append((t + k / float(max(count, 1)), s, val))
    return rows


def static_db(n_sensors=6):
    db = Database(
        Schema(
            "meta",
            {
                "sensors": Table(
                    "sensors",
                    [
                        Column("sid", SQLType.INTEGER),
                        Column("kind", SQLType.TEXT),
                    ],
                )
            },
        )
    )
    db.insert(
        "sensors", [(s, "temp" if s % 3 else "pres") for s in range(n_sensors)]
    )
    return db


def build_engine(
    rows=None,
    *,
    shards=1,
    incremental=True,
    mqo=True,
    cache_capacity=4096,
    streams=None,
    attach_static=True,
    **engine_kwargs,
):
    """An engine over the shared workload.

    ``rows`` registers a single stream ``S``; ``streams`` (a
    ``name -> rows`` mapping) registers several join-compatible streams
    instead.  ``shards > 1`` builds a :class:`ShardedEngine`; extra
    keyword arguments (``parallel``, ``scheduler``, ...) pass through to
    the engine constructor.
    """
    if shards > 1:
        engine = ShardedEngine(
            shards=shards,
            incremental=incremental,
            mqo=mqo,
            cache_capacity=cache_capacity,
            **engine_kwargs,
        )
    else:
        engine = StreamEngine(
            incremental=incremental,
            mqo=mqo,
            cache_capacity=cache_capacity,
            **engine_kwargs,
        )
    if streams is None:
        streams = {"S": rows if rows is not None else measurement_rows()}
    for name, stream_rows in streams.items():
        engine.register_stream(ListSource(Stream(name, SCHEMA), stream_rows))
    if attach_static:
        engine.attach_database("meta", static_db())
    return engine


def eligible_tiers(plan):
    """The execution tiers this plan may run under, ceiling first.

    The incremental analysis is a correctness *ceiling*: a plan may run
    at its analyzed tier or anywhere below it (RECOMPUTE is always
    eligible) — never above.  Mirrors the demote-only contract of the
    cost-based planner.
    """
    ceiling = analyze_incremental(plan)
    tiers = [ceiling.mode]
    if ceiling.mode is not IncrementalMode.RECOMPUTE:
        tiers.append(IncrementalMode.RECOMPUTE)
    return tiers


def force_tier(plan, mode):
    """Pin ``plan`` to one eligible execution tier (differential knob).

    Forcing the ceiling reruns the analysis (the pane decisions carry
    the pane grids the runtime needs); forcing RECOMPUTE below a pane
    ceiling installs a bare recompute decision, exactly like the cost
    model's registration-time demotion.  Forcing above the ceiling is a
    harness bug and raises.
    """
    ceiling = analyze_incremental(plan)
    if mode is ceiling.mode:
        plan.incremental = ceiling
    elif mode is IncrementalMode.RECOMPUTE:
        plan.incremental = IncrementalDecision(
            mode=IncrementalMode.RECOMPUTE, reason="forced tier (test harness)"
        )
    else:
        raise ValueError(
            f"tier {mode.name} is above this plan's ceiling "
            f"{ceiling.mode.name}"
        )
    return plan


def run_engine(engine, sql, shards=1, forced_tier=None):
    """Plan + execute one query to exhaustion; hashable result tuples.

    ``forced_tier`` pins the plan to one eligible execution tier before
    binding (see :func:`force_tier`).
    """
    plan = plan_sql(sql, engine, name="q")
    if forced_tier is not None:
        force_tier(plan, forced_tier)
    if isinstance(engine, ShardedEngine):
        results = engine.run_continuous(plan, shards=shards)
    else:
        results = engine.run_continuous(plan)
    return [
        (r.window_id, r.window_end, tuple(r.columns), tuple(r.rows))
        for r in results
    ]


def snapshot(registered):
    """A registered query's retained results as hashable tuples."""
    return [
        (r.window_id, r.window_end, tuple(r.columns), tuple(r.rows))
        for r in registered.results()
    ]


def run_concurrently(sqls, engine, shards=1):
    """Register every query on one gateway, run to exhaustion, snapshot.

    Returns ``(snapshots, gateway)``; queries are deregistered before
    returning, so gateway bookkeeping assertions see the final state.
    """
    gateway = GatewayServer(engine)
    registered = [
        gateway.register(
            sql, name=f"q{i}", shards=shards if shards > 1 else None
        )
        for i, sql in enumerate(sqls)
    ]
    while gateway.step():
        pass
    out = [snapshot(q) for q in registered]
    for q in registered:
        gateway.deregister(q.name)
    return out, gateway


# -- fault-injection / recovery drivers ---------------------------------------


def run_checkpointed(
    sqls,
    directory,
    *,
    shards=1,
    interval=1,
    faults=None,
    engine_kwargs=None,
    **checkpoint_kwargs,
):
    """Run the workload under a :class:`CheckpointManager`.

    Registers every query as ``q{i}``, steps to exhaustion (or until an
    injected :class:`SimulatedCrash` kills the engine), and returns
    ``(snapshots_or_None, crashed)`` — snapshots only when the run
    survived.  The crashed engine and gateway are discarded either way,
    exactly like a dead process.
    """
    engine = build_engine(shards=shards, **(engine_kwargs or {}))
    gateway = GatewayServer(engine)
    registered = [
        gateway.register(
            sql, name=f"q{i}", shards=shards if shards > 1 else None
        )
        for i, sql in enumerate(sqls)
    ]
    CheckpointManager(
        gateway, directory, interval=interval, faults=faults,
        **checkpoint_kwargs,
    )
    try:
        while gateway.step():
            pass
    except SimulatedCrash:
        return None, True
    return [snapshot(q) for q in registered], False


def recover_and_finish(sqls, directory, *, shards=1, engine_kwargs=None):
    """Recover from ``directory`` on a fresh engine and run to the end.

    Falls back to registering ``sqls`` from scratch when no usable
    checkpoint exists (the graceful-degradation path).  Returns
    ``(snapshots, recovered)``.
    """
    engine = build_engine(shards=shards, **(engine_kwargs or {}))
    gateway = recover(directory, engine)
    recovered = gateway is not None
    if gateway is None:
        gateway = GatewayServer(engine)
        for i, sql in enumerate(sqls):
            gateway.register(
                sql, name=f"q{i}", shards=shards if shards > 1 else None
            )
    while gateway.step():
        pass
    return [snapshot(gateway.query(f"q{i}")) for i in range(len(sqls))], recovered


# -- seeded random query generators -------------------------------------------

SINGLE_STREAM_AGGREGATES = [
    "AVG(w.val)",
    "SUM(w.val)",
    "COUNT(*)",
    "COUNT(w.val)",
    "MIN(w.val)",
    "MAX(w.val)",
    "AVG(w.val * 2 + 1)",
    "SUM(w.val - 50)",
]

FAMILY_AGGREGATES = [
    "AVG(w.val)",
    "SUM(w.val)",
    "COUNT(*)",
    "MIN(w.val)",
    "MAX(w.val)",
    "AVG(w.val * 2 + 1)",
]

#: join-compatible aggregate templates: every column resolves against
#: the canonical two-stream join prefix (aliases ``a``/``b`` over the
#: shared schema)
JOIN_AGGREGATES = [
    "COUNT(*)",
    "COUNT(b.val)",
    "SUM(a.val)",
    "SUM(a.val + b.val)",
    "AVG(b.val)",
    "AVG(a.val * b.val)",
    "MIN(a.val)",
    "MAX(b.val)",
]


def random_single_stream_sql(rng, r, s):
    """One random single-stream CQ over stream ``S`` (+ static joins)."""
    calls = rng.sample(SINGLE_STREAM_AGGREGATES, rng.randint(1, 3))
    select = ", ".join(f"{c} AS a{i}" for i, c in enumerate(calls))
    group = rng.random() < 0.7
    join = rng.random() < 0.4
    tables = f"timeSlidingWindow(S, {r}, {s}) AS w"
    where = []
    if join:
        tables += ", sensors AS t"
        where.append("w.sid = t.sid")
        if rng.random() < 0.5:
            where.append("t.kind = 'temp'")
    if rng.random() < 0.6:
        where.append(f"w.val > {rng.randint(45, 65)}")
    sql = "SELECT "
    if group:
        sql += "w.sid AS s, "
    sql += select + " FROM " + tables
    if where:
        sql += " WHERE " + " AND ".join(where)
    if group:
        sql += " GROUP BY w.sid"
    return sql


def random_family(rng):
    """A base prefix plus 2-4 variants sharing it (and one outsider)."""
    r, s = rng.choice([(20, 5), (12, 4), (30, 10)])
    join = rng.random() < 0.6
    where = []
    tables = f"timeSlidingWindow(S, {r}, {s}) AS w"
    if join:
        tables += ", sensors AS t"
        where.append("w.sid = t.sid")
        if rng.random() < 0.5:
            where.append("t.kind = 'temp'")
    if rng.random() < 0.7:
        where.append(f"w.val > {rng.randint(48, 62)}")
    prefix = " FROM " + tables
    if where:
        prefix += " WHERE " + " AND ".join(where)
    calls = rng.sample(FAMILY_AGGREGATES, rng.randint(1, 3))
    select = ", ".join(f"{c} AS a{i}" for i, c in enumerate(calls))
    family = []
    for _ in range(rng.randint(2, 4)):
        sql = f"SELECT w.sid AS g, {select}{prefix} GROUP BY w.sid"
        if rng.random() < 0.5:
            sql += f" HAVING {calls[0]} > {rng.randint(40, 80)}"
        family.append(sql)
    # one structurally different query keeps the registry honest
    family.append(
        f"SELECT COUNT(*) AS n FROM timeSlidingWindow(S, {r}, {s}) AS w "
        f"WHERE w.val > {rng.randint(48, 62)}"
    )
    return family


def random_join_sql(rng, spec_a, spec_b=None, streams=("A", "B")):
    """One random two-stream equi-join CQ over streams ``A``/``B``.

    The join key is always the shared ``sid`` column (join-compatible by
    construction); ``spec_b`` defaults to ``spec_a`` and may differ for
    mismatched per-side grids.  Static joins, per-side filters, residual
    cross-stream filters, grouping and HAVING are all randomized.
    """
    ra, sa = spec_a
    rb, sb = spec_b if spec_b is not None else spec_a
    name_a, name_b = streams
    calls = rng.sample(JOIN_AGGREGATES, rng.randint(1, 3))
    select = ", ".join(f"{c} AS a{i}" for i, c in enumerate(calls))
    group = rng.random() < 0.7
    tables = (
        f"timeSlidingWindow({name_a}, {ra}, {sa}) AS a, "
        f"timeSlidingWindow({name_b}, {rb}, {sb}) AS b"
    )
    where = ["a.sid = b.sid"]
    if rng.random() < 0.4:
        tables += ", sensors AS t"
        where.append("a.sid = t.sid")
        if rng.random() < 0.5:
            where.append("t.kind = 'temp'")
    if rng.random() < 0.5:
        where.append(f"a.val > {rng.randint(45, 60)}")
    if rng.random() < 0.4:
        where.append(f"b.val < {rng.randint(58, 78)}")
    if rng.random() < 0.3:
        where.append("a.val < b.val + 20")  # residual cross-stream filter
    sql = "SELECT "
    if group:
        sql += "a.sid AS g, "
    sql += select + " FROM " + tables + " WHERE " + " AND ".join(where)
    if group:
        sql += " GROUP BY a.sid"
        if rng.random() < 0.4:
            sql += f" HAVING {calls[0]} > {rng.randint(0, 60)}"
    return sql


def random_join_family(rng, spec_a, spec_b=None):
    """2-4 join CQs sharing both side prefixes (grouping/HAVING vary)."""
    ra, sa = spec_a
    rb, sb = spec_b if spec_b is not None else spec_a
    tables = (
        f"timeSlidingWindow(A, {ra}, {sa}) AS a, "
        f"timeSlidingWindow(B, {rb}, {sb}) AS b"
    )
    where = ["a.sid = b.sid"]
    if rng.random() < 0.5:
        where.append(f"a.val > {rng.randint(45, 58)}")
    if rng.random() < 0.5:
        where.append(f"b.val < {rng.randint(60, 78)}")
    prefix = f" FROM {tables} WHERE " + " AND ".join(where)
    calls = rng.sample(JOIN_AGGREGATES, rng.randint(1, 3))
    select = ", ".join(f"{c} AS a{i}" for i, c in enumerate(calls))
    family = []
    for _ in range(rng.randint(2, 4)):
        sql = f"SELECT a.sid AS g, {select}{prefix} GROUP BY a.sid"
        if rng.random() < 0.5:
            sql += f" HAVING {calls[0]} > {rng.randint(0, 70)}"
        family.append(sql)
    return family
