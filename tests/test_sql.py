"""Tests for the SQL(+) AST, printer and parser."""

import pytest

from repro.sql import (
    BaseTable,
    BinOp,
    Col,
    Func,
    Join,
    Lit,
    SelectItem,
    SelectQuery,
    SQLSyntaxError,
    Star,
    SubSelect,
    TableFunction,
    UnaryOp,
    UnionQuery,
    and_all,
    col,
    eq,
    lit,
    parse_sql,
    print_query,
)


class TestASTBasics:
    def test_lit_rendering(self):
        assert str(Lit(None)) == "NULL"
        assert str(Lit(True)) == "TRUE"
        assert str(Lit("o'brien")) == "'o''brien'"
        assert str(Lit(3.5)) == "3.5"

    def test_col_rendering(self):
        assert str(Col("t", "x")) == "t.x"
        assert str(Col(None, "x")) == "x"

    def test_helpers(self):
        assert eq(col("a"), lit(1)) == BinOp("=", Col(None, "a"), Lit(1))
        assert and_all([]) is None
        combined = and_all([eq(col("a"), lit(1)), eq(col("b"), lit(2))])
        assert isinstance(combined, BinOp) and combined.op == "AND"

    def test_output_names(self):
        q = SelectQuery(
            select=(
                SelectItem(Col("t", "a"), "x"),
                SelectItem(Col("t", "b")),
                SelectItem(Func("COUNT", (Star(),))),
            ),
            from_=(BaseTable("t"),),
        )
        assert q.output_names() == ["x", "b", "COUNT(*)"]

    def test_union_requires_selects(self):
        with pytest.raises(ValueError):
            UnionQuery(())


class TestParserRoundTrips:
    CASES = [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b FROM t WHERE (a = 1)",
        "SELECT t.a AS x FROM t AS u WHERE (u.a > 3.5)",
        "SELECT a FROM t, s WHERE (t.id = s.id)",
        "SELECT a FROM t INNER JOIN s ON (t.id = s.id)",
        "SELECT a FROM t LEFT JOIN s ON (t.id = s.id)",
        "SELECT COUNT(*) FROM t GROUP BY a HAVING (COUNT(*) > 2)",
        "SELECT a FROM t ORDER BY a LIMIT 10",
        "SELECT a FROM t UNION ALL SELECT b FROM s",
        "SELECT AVG(v) AS m FROM timeSlidingWindow(S_Msmt, 10, 1) GROUP BY window_id",
        "SELECT * FROM wCache(S_Msmt, window_id)",
        "SELECT a FROM (SELECT a FROM t) AS sub",
        "SELECT ('u' || id) AS uri FROM t",
        "SELECT a FROM t WHERE a IS NULL",
        "SELECT a FROM t WHERE a IS NOT NULL",
        "SELECT a FROM t WHERE (name LIKE 'gas%')",
        "SELECT ((a + b) * 2) FROM t",
        "SELECT a FROM t WHERE ((a = 1) OR (b = 2))",
        "SELECT a FROM t WHERE (NOT (a = 1))",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_round_trip_stable(self, sql):
        once = print_query(parse_sql(sql))
        twice = print_query(parse_sql(once))
        assert once == twice

    def test_where_conjunction_split(self):
        q = parse_sql("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert len(q.where) == 3

    def test_table_function_args(self):
        q = parse_sql("SELECT * FROM timeSlidingWindow(S_Msmt, 10, 1) AS w")
        fn = q.from_[0]
        assert isinstance(fn, TableFunction)
        assert fn.name == "timeSlidingWindow"
        assert isinstance(fn.args[0], BaseTable)
        assert fn.args[1] == Lit(10)
        assert fn.alias == "w"

    def test_nested_query_in_table_function(self):
        q = parse_sql(
            "SELECT * FROM timeSlidingWindow((SELECT ts, v FROM raw), 10, 1)"
        )
        fn = q.from_[0]
        assert isinstance(fn.args[0], SelectQuery)

    def test_aggregates(self):
        q = parse_sql("SELECT COUNT(DISTINCT a), MIN(b), MAX(b) FROM t")
        count = q.select[0].expr
        assert isinstance(count, Func) and count.distinct

    def test_in_list(self):
        q = parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)")
        pred = q.where[0]
        assert isinstance(pred, Func) and pred.name == "IN_LIST"
        assert len(pred.args) == 4

    def test_implicit_alias(self):
        q = parse_sql("SELECT a x FROM t u")
        assert q.select[0].alias == "x"
        assert q.from_[0].alias == "u"

    def test_union_not_all(self):
        q = parse_sql("SELECT a FROM t UNION SELECT a FROM s")
        assert isinstance(q, UnionQuery) and not q.all

    def test_comments_skipped(self):
        q = parse_sql("SELECT a -- comment\nFROM t")
        assert q.from_[0].name == "t"

    def test_errors(self):
        for bad in ["SELECT", "SELECT FROM t", "SELECT a FROM", "FOO BAR",
                    "SELECT a FROM t WHERE", "SELECT a FROM t )"]:
            with pytest.raises(SQLSyntaxError):
                parse_sql(bad)

    def test_unary_minus(self):
        q = parse_sql("SELECT -a FROM t")
        assert isinstance(q.select[0].expr, UnaryOp)


class TestSQLiteCompatibility:
    """Printed static SQL must execute on sqlite3."""

    def test_executes_on_sqlite(self):
        import sqlite3

        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE t (id INTEGER, name TEXT)")
        conn.executemany("INSERT INTO t VALUES (?, ?)", [(1, "a"), (2, "b")])
        q = parse_sql(
            "SELECT ('urn:x/' || id) AS uri, name FROM t WHERE id >= 1 ORDER BY id"
        )
        rows = conn.execute(print_query(q)).fetchall()
        assert rows == [("urn:x/1", "a"), ("urn:x/2", "b")]
