"""Smoke test: every script under examples/ must run to completion.

The examples are the public face of the facade API; running them in
tier-1 verify means API drift breaks the build instead of rotting
silently.  Each script is executed in a subprocess with the repo's
``src`` on PYTHONPATH and must exit 0.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, str(script)],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
