"""Static CQ analyzer tests: seeded defects, zero false positives on the
Siemens suite, strict registration, the session API and the CLI."""

import pytest

from repro.analysis import (
    AnalysisReport,
    Severity,
    StrictAnalysisError,
    analyze_plan,
    analyze_starql,
    find_span,
)
from repro.analysis.__main__ import main as analysis_cli
from repro.exastream import GatewayServer
from repro.siemens import deploy, diagnostic_catalog

from cqgen import build_engine

ROWS = [
    (0.0, 1, 1.0),
    (1.0, 2, 2.0),
    (2.0, 1, 3.0),
    (3.0, 2, 4.0),
    (4.0, 1, 5.0),
]


def fresh_gateway():
    return GatewayServer(build_engine(list(ROWS)))


def analyze_sql(sql, gateway=None):
    gateway = gateway or fresh_gateway()
    from repro.exastream.planner import plan_sql

    plan = plan_sql(sql, gateway.engine)
    return analyze_plan(plan, gateway.engine, gateway=gateway)


class TestSeededDefects:
    """One test per defect class: severity and source span both checked."""

    def test_type_mismatch_comparison(self):
        sql = (
            "SELECT s.sid AS sid FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 'hot'"
        )
        report = analyze_sql(sql)
        errors = [d for d in report.errors if d.code == "ANA003"]
        assert len(errors) == 1
        assert "REAL" in errors[0].message or "TEXT" in errors[0].message
        assert errors[0].span is not None
        assert sql[errors[0].span.start : errors[0].span.end] in sql

    def test_unsatisfiable_predicate(self):
        sql = (
            "SELECT s.val AS v FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 5 AND s.val < 3"
        )
        report = analyze_sql(sql)
        errors = [d for d in report.errors if d.code == "ANA010"]
        assert len(errors) == 1
        assert "never produce a row" in errors[0].message
        span = errors[0].span
        assert span is not None
        assert sql[span.start : span.end] == "s.val > 5"

    def test_contradictory_equality(self):
        report = analyze_sql(
            "SELECT s.val AS v FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val = 5 AND s.val = 6"
        )
        assert any(d.code == "ANA010" for d in report.errors)

    def test_open_bound_equality_contradiction(self):
        report = analyze_sql(
            "SELECT s.val AS v FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 5 AND s.val = 5"
        )
        assert any(d.code == "ANA010" for d in report.errors)

    def test_redundant_filter_is_info(self):
        report = analyze_sql(
            "SELECT s.val AS v FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 5 AND s.val > 3"
        )
        assert not report.has_errors
        infos = [d for d in report.infos if d.code == "ANA011"]
        assert len(infos) == 1
        assert "s.val > 3" in infos[0].message

    def test_bad_grid_pane_cap(self):
        sql = (
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 0.3) AS s GROUP BY s.sid"
        )
        report = analyze_sql(sql)
        warnings = [d for d in report.warnings if d.code == "ANA021"]
        assert len(warnings) == 1
        assert "not pane-decomposable" in warnings[0].message
        assert warnings[0].span is not None

    def test_unknown_column(self):
        sql = "SELECT s.bogus AS v FROM timeSlidingWindow(S, 10, 2) AS s"
        report = analyze_sql(sql)
        errors = [d for d in report.errors if d.code == "ANA001"]
        assert len(errors) == 1
        assert "s.bogus" in errors[0].message
        assert "val" in (errors[0].hint or "")  # hint lists real columns
        span = errors[0].span
        assert sql[span.start : span.end] == "s.bogus"

    def test_unknown_alias(self):
        report = analyze_sql(
            "SELECT z.val AS v FROM timeSlidingWindow(S, 10, 2) AS s"
        )
        assert any(d.code == "ANA002" for d in report.errors)

    def test_join_key_incompatibility(self):
        sql = (
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s, sensors AS t "
            "WHERE s.sid = t.kind GROUP BY s.sid"
        )
        report = analyze_sql(sql)
        errors = [d for d in report.errors if d.code == "ANA004"]
        assert len(errors) == 1
        assert "INTEGER" in errors[0].message and "TEXT" in errors[0].message
        assert errors[0].span is not None

    def test_compatible_join_key_is_clean(self):
        report = analyze_sql(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s, sensors AS t "
            "WHERE s.sid = t.sid GROUP BY s.sid"
        )
        assert not report.has_errors

    def test_tumbling_window_info(self):
        report = analyze_sql(
            "SELECT s.val AS v FROM timeSlidingWindow(S, 5, 5) AS s"
        )
        assert any(d.code == "ANA020" for d in report.infos)


class TestStarqlAnalysis:
    def test_unknown_stream(self):
        deployment = siemens()
        text = task_text(0).replace("S_Msmt", "S_Nope")
        report = analyze_starql(text, deployment.translator)
        assert any(d.code == "ANA002" for d in report.errors)

    def test_syntax_error_is_diagnostic(self):
        deployment = siemens()
        report = analyze_starql(
            "CREATE STREAM garbage WITHOUT meaning", deployment.translator
        )
        assert any(d.code == "ANA000" for d in report.errors)

    def test_unknown_attribute(self):
        deployment = siemens()
        text = task_text(0).replace("sie:hasValue", "sie:noSuchAttr")
        report = analyze_starql(text, deployment.translator)
        assert any(d.code in ("ANA006", "ANA007") for d in report.errors)


_SIEMENS = {}


def siemens():
    if "d" not in _SIEMENS:
        _SIEMENS["d"] = deploy(stream_duration=5)
    return _SIEMENS["d"]


def task_text(index):
    return diagnostic_catalog()[index].starql


class TestNoFalsePositives:
    def test_all_siemens_tasks_error_free(self):
        deployment = siemens()
        for task in diagnostic_catalog():
            report = analyze_starql(
                task.starql, deployment.translator, name=task.name
            )
            assert not report.has_errors, report.render()

    def test_fig1_example_error_free(self):
        from test_starql import FIG1_QUERY, tiny_deployment

        onto, mc, engine, macros, translator = tiny_deployment()
        report = analyze_starql(FIG1_QUERY, translator)
        assert not report.has_errors, report.render()


class TestStrictRegistration:
    def test_strict_rejects_and_binds_nothing(self):
        gateway = fresh_gateway()
        with pytest.raises(StrictAnalysisError) as info:
            gateway.register(
                "SELECT s.val AS v FROM timeSlidingWindow(S, 10, 2) AS s "
                "WHERE s.val > 5 AND s.val < 3",
                name="doomed",
                strict=True,
            )
        assert info.value.report.has_errors
        assert "doomed" not in gateway
        assert gateway.shared_reader_count == 0
        assert not gateway._reader_refs

    def test_strict_accepts_clean_query(self):
        gateway = fresh_gateway()
        registered = gateway.register(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s GROUP BY s.sid",
            strict=True,
        )
        assert registered.active

    def test_default_registration_is_advisory(self):
        gateway = fresh_gateway()
        registered = gateway.register(
            "SELECT s.val AS v FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 5 AND s.val < 3"
        )
        assert registered.active  # runs (and yields nothing) as before


class TestRegistrationDiagnostics:
    def test_sharing_prediction(self):
        gateway = fresh_gateway()
        gateway.register(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s GROUP BY s.sid",
            name="base",
        )
        peer = gateway.register(
            "SELECT s.sid AS sid, AVG(s.val) AS a "
            "FROM timeSlidingWindow(S, 10, 2) AS s GROUP BY s.sid",
            name="peer",
        )
        codes = {d.code for d in peer.diagnostics}
        assert "ANA030" in codes
        assert any("base" in d.message for d in peer.diagnostics)

    def test_filter_subsumption_opportunity(self):
        gateway = fresh_gateway()
        gateway.register(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s GROUP BY s.sid",
            name="broad",
        )
        narrow = gateway.register(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 2 GROUP BY s.sid",
            name="narrow",
        )
        subsumed = [d for d in narrow.diagnostics if d.code == "ANA031"]
        assert len(subsumed) == 1
        assert subsumed[0].severity is Severity.INFO
        assert "broad" in subsumed[0].message
        # and execution is unchanged: both queries run to completion
        while gateway.step():
            pass

    def test_no_subsumption_in_reverse_direction(self):
        gateway = fresh_gateway()
        gateway.register(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s "
            "WHERE s.val > 2 GROUP BY s.sid",
            name="narrow",
        )
        broad = gateway.register(
            "SELECT s.sid AS sid, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 10, 2) AS s GROUP BY s.sid",
            name="broad",
        )
        assert not [d for d in broad.diagnostics if d.code == "ANA031"]


class TestSessionAPI:
    def test_explain_and_lint(self):
        deployment = siemens()
        session = deployment.session()
        try:
            report = session.explain(task_text(0))
            assert isinstance(report, AnalysisReport)
            assert not report.has_errors
            diags = session.lint(task_text(0))
            assert diags == sorted(diags, key=lambda d: -d.severity.rank)
        finally:
            session.close()

    def test_explain_bad_query(self):
        deployment = siemens()
        session = deployment.session()
        try:
            report = session.explain(
                task_text(0).replace("S_Msmt", "S_Nope")
            )
            assert report.has_errors
        finally:
            session.close()

    def test_strict_submit(self):
        deployment = siemens()
        session = deployment.session()
        try:
            handle = session.submit(task_text(0), strict=True)
            assert handle.registered.active
        finally:
            session.close()


class TestByteIdentity:
    def test_analysis_and_audit_do_not_change_results(self, monkeypatch):
        sqls = [
            "SELECT s.sid AS sid, COUNT(*) AS n, AVG(s.val) AS a "
            "FROM timeSlidingWindow(S, 6, 2) AS s GROUP BY s.sid",
            "SELECT s.sid AS sid, MAX(s.val) AS m "
            "FROM timeSlidingWindow(S, 6, 2) AS s "
            "WHERE s.val > 1 GROUP BY s.sid",
        ]

        def run(audit, strict):
            if audit:
                monkeypatch.setenv("REPRO_AUDIT", "1")
            else:
                monkeypatch.delenv("REPRO_AUDIT", raising=False)
            gateway = fresh_gateway()
            handles = [
                gateway.register(sql, name=f"q{i}", strict=strict)
                for i, sql in enumerate(sqls)
            ]
            while gateway.step():
                pass
            out = [
                [(r.window_id, tuple(map(tuple, r.rows))) for r in h.results()]
                for h in handles
            ]
            for handle in handles:
                gateway.deregister(handle.name)
            return out

        baseline = run(audit=False, strict=False)
        assert run(audit=True, strict=False) == baseline
        assert run(audit=True, strict=True) == baseline


class TestCLI:
    def test_cli_clean_file(self, tmp_path, capsys):
        path = tmp_path / "ok.starql"
        path.write_text(task_text(0))
        assert analysis_cli([str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_cli_defective_file(self, tmp_path, capsys):
        path = tmp_path / "bad.starql"
        path.write_text(task_text(0).replace("S_Msmt", "S_Nope"))
        assert analysis_cli([str(path)]) == 1
        assert "ANA002" in capsys.readouterr().out


class TestSpanHelper:
    def test_find_span_line_column(self):
        span = find_span("line one\nline two s.val here", "s.val")
        assert (span.line, span.column) == (2, 10)

    def test_find_span_missing(self):
        assert find_span("abc", "zzz") is None
        assert find_span(None, "x") is None
