"""Error paths of the STARQL reference semantics: malformed windows,
unknown streams, unmapped streams and unknown attributes must fail loudly
instead of silently producing empty windows."""

import dataclasses

import pytest

from repro.starql import TranslationError, parse_starql
from repro.starql.ast import WindowClause
from repro.starql.semantics import ReferenceEvaluator, static_abox_graph

from test_starql import FIG1_QUERY, tiny_deployment


def make_evaluator():
    onto, mc, engine, macros, translator = tiny_deployment()
    return ReferenceEvaluator(
        onto, mc, engine, static_abox_graph(onto), macros
    )


def with_window(query, window):
    return dataclasses.replace(query, windows=(window,))


def test_zero_range_window_rejected():
    evaluator = make_evaluator()
    query = parse_starql(FIG1_QUERY)
    bad = with_window(query, WindowClause("S_Msmt", 0.0, 1.0))
    with pytest.raises(ValueError, match="window range must be positive"):
        evaluator.evaluate(bad, max_windows=2)


def test_negative_slide_window_rejected():
    evaluator = make_evaluator()
    query = parse_starql(FIG1_QUERY)
    bad = with_window(query, WindowClause("S_Msmt", 10.0, -1.0))
    with pytest.raises(ValueError, match="window slide must be positive"):
        evaluator.evaluate(bad, max_windows=2)


def test_unknown_stream_rejected():
    evaluator = make_evaluator()
    query = parse_starql(FIG1_QUERY)
    bad = with_window(query, WindowClause("S_Nope", 10.0, 1.0))
    with pytest.raises(ValueError, match="unknown stream 'S_Nope'"):
        evaluator.evaluate(bad, max_windows=2)


def test_unknown_stream_message_lists_registered_streams():
    evaluator = make_evaluator()
    query = parse_starql(FIG1_QUERY)
    bad = with_window(query, WindowClause("S_Nope", 10.0, 1.0))
    with pytest.raises(ValueError, match="S_Msmt"):
        evaluator.evaluate(bad, max_windows=2)


def test_unmapped_stream_rejected():
    onto, mc, engine, macros, translator = tiny_deployment()
    # a registered stream with tuples but no stream mappings: state
    # graphs cannot be built from it, which must not pass silently
    from repro.relational import Column, SQLType
    from repro.streams import ListSource, Stream, StreamSchema

    orphan_schema = StreamSchema(
        (Column("ts", SQLType.REAL), Column("val", SQLType.REAL)),
        time_column="ts",
    )
    engine.register_stream(
        ListSource(Stream("S_Orphan", orphan_schema), [(0.0, 1.0)])
    )
    evaluator = ReferenceEvaluator(
        onto, mc, engine, static_abox_graph(onto), macros
    )
    query = parse_starql(FIG1_QUERY)
    bad = with_window(query, WindowClause("S_Orphan", 10.0, 1.0))
    with pytest.raises(ValueError, match="no stream mappings"):
        evaluator.evaluate(bad, max_windows=2)


def test_unknown_attribute_fails_translation():
    onto, mc, engine, macros, translator = tiny_deployment()
    bad = FIG1_QUERY.replace("sie:hasValue", "sie:noSuchAttribute")
    with pytest.raises(TranslationError):
        translator.translate_text(bad)
