"""Crash/recovery differential suite.

Every test follows the same oracle pattern: run a workload to
exhaustion uninterrupted, then run it again under a
:class:`CheckpointManager` with a deterministic fault schedule, kill
it, recover on a freshly built engine, finish the run, and require the
recovered queries' results to be byte-identical to the oracle's.
Degradation paths (torn tails, missing checkpoints, IO errors) and the
live-migration/rebalance handoff ride the same oracle.
"""

import json
import random

import pytest

from cqgen import (
    build_engine,
    measurement_rows,
    random_join_sql,
    random_single_stream_sql,
    recover_and_finish,
    run_checkpointed,
    snapshot,
)
from repro.analysis import verify_gateway
from repro.errors import CheckpointCorrupt, RecoveryError
from repro.exastream import GatewayServer, Scheduler
from repro.exastream.durability import (
    CheckpointLog,
    CheckpointManager,
    FaultInjector,
    SimulatedCrash,
    migrate_query,
    recover,
    tear_file,
)
from repro.exastream.durability.checkpoint import GATEWAY_LOG
from repro.exastream.durability.log import KIND_GATEWAY

ROWS = measurement_rows(n_seconds=80)

SQLS = [
    "SELECT w.sid AS s, AVG(w.val) AS a FROM timeSlidingWindow(S, 20, 5) AS w"
    " GROUP BY w.sid",
    "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w"
    " WHERE w.val > 55",
    "SELECT w.sid AS s, SUM(w.val) AS a FROM timeSlidingWindow(S, 80, 5) AS w,"
    " sensors AS t WHERE w.sid = t.sid AND t.kind = 'temp' GROUP BY w.sid",
]


def _oracle(sqls, shards=1, engine_kwargs=None):
    engine = build_engine(shards=shards, **(engine_kwargs or {}))
    gateway = GatewayServer(engine)
    registered = [
        gateway.register(
            sql, name=f"q{i}", shards=shards if shards > 1 else None
        )
        for i, sql in enumerate(sqls)
    ]
    while gateway.step():
        pass
    return [snapshot(q) for q in registered]


class TestCrashRecoveryDifferential:
    """Kill/restart at systematic pulse indices; outputs must be exact."""

    @pytest.mark.parametrize("shards", [1, 2])
    def test_fixed_cqs_crash_at_every_pulse_mod_k(self, shards, tmp_path):
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, shards, engine_kwargs)
        total = sum(len(s) for s in base)
        assert total > 20
        for crash_after in range(1, total + 2, 6):
            directory = tmp_path / f"crash{crash_after}"
            out, crashed = run_checkpointed(
                SQLS,
                directory,
                shards=shards,
                interval=2,
                faults=FaultInjector(crash_after_pulses=crash_after),
                engine_kwargs=engine_kwargs,
            )
            assert crashed == (crash_after <= total)
            if not crashed:
                assert out == base
                continue
            got, _ = recover_and_finish(
                SQLS, directory, shards=shards, engine_kwargs=engine_kwargs
            )
            assert got == base

    @pytest.mark.parametrize("shards", [1, 2])
    def test_random_cqs_crash_recovery(self, shards, tmp_path):
        rng = random.Random(20260808 + shards)
        sqls = [
            random_single_stream_sql(rng, 20, 5),
            random_single_stream_sql(rng, 80, 5),
            random_single_stream_sql(rng, 5, 5),
        ]
        engine_kwargs = {"rows": ROWS}
        base = _oracle(sqls, shards, engine_kwargs)
        total = sum(len(s) for s in base)
        for crash_after in range(3, total, max(1, total // 4)):
            directory = tmp_path / f"crash{crash_after}"
            out, crashed = run_checkpointed(
                sqls,
                directory,
                shards=shards,
                interval=3,
                faults=FaultInjector(crash_after_pulses=crash_after),
                engine_kwargs=engine_kwargs,
            )
            assert crashed and out is None
            got, _ = recover_and_finish(
                sqls, directory, shards=shards, engine_kwargs=engine_kwargs
            )
            assert got == base

    def test_random_join_cq_crash_recovery(self, tmp_path):
        rng = random.Random(7)
        streams = {
            "A": measurement_rows(n_seconds=60),
            "B": measurement_rows(n_seconds=60, value_offset=3.0),
        }
        sqls = [random_join_sql(rng, (20, 5)) for _ in range(2)]
        engine_kwargs = {"streams": streams}
        base = _oracle(sqls, 1, engine_kwargs)
        total = sum(len(s) for s in base)
        for crash_after in (3, total // 2, total - 1):
            directory = tmp_path / f"crash{crash_after}"
            out, crashed = run_checkpointed(
                sqls,
                directory,
                interval=2,
                faults=FaultInjector(crash_after_pulses=crash_after),
                engine_kwargs=engine_kwargs,
            )
            assert crashed
            got, recovered = recover_and_finish(
                sqls, directory, engine_kwargs=engine_kwargs
            )
            assert recovered and got == base


class TestSiemensRecovery:
    """Every catalog task survives kill/restart byte-identically."""

    def test_all_catalog_tasks_crash_recovery(self, tmp_path):
        from repro.siemens import diagnostic_catalog
        from repro.siemens.deployment import deploy

        catalog = diagnostic_catalog()
        assert len(catalog) == 20

        def fresh():
            deployment = deploy()
            names = []
            for task in catalog:
                registered, _ = deployment.register_task(
                    task.starql, name=task.name
                )
                names.append(registered.name)
            return deployment, names

        deployment, names = fresh()
        while deployment.gateway.step():
            pass
        base = [snapshot(deployment.gateway.query(n)) for n in names]
        total = sum(len(s) for s in base)
        assert total > 0

        for crash_after in (4, total // 2, total - 1):
            directory = tmp_path / f"siemens{crash_after}"
            deployment, names = fresh()
            CheckpointManager(
                deployment.gateway,
                directory,
                interval=3,
                faults=FaultInjector(crash_after_pulses=crash_after),
            )
            with pytest.raises(SimulatedCrash):
                while deployment.gateway.step():
                    pass
            # Restart mirrors operations: re-run the deployment script
            # (streams, databases, macro UDFs), then recover the state.
            # Task registration installs the translated macros on the
            # engine under deterministic names; the recovered gateway is
            # a separate session on the same engine.
            replacement, _ = fresh()
            gateway = recover(directory, replacement.engine)
            assert gateway is not None
            while gateway.step():
                pass
            assert [snapshot(gateway.query(n)) for n in names] == base


class TestGracefulDegradation:
    """Corrupt tails truncate and fall back; never a wrong answer."""

    def test_torn_tail_falls_back_to_previous_epoch(self, tmp_path):
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        out, crashed = run_checkpointed(
            SQLS, tmp_path, interval=1, engine_kwargs=engine_kwargs
        )
        assert not crashed and out == base
        # Tear the newest record's tail; recovery must detect the
        # checksum break, truncate, and recover the previous epoch.
        path = tmp_path / GATEWAY_LOG
        tear_file(path, path.stat().st_size - 7)
        got, recovered = recover_and_finish(
            SQLS, tmp_path, engine_kwargs=engine_kwargs
        )
        assert recovered and got == base

    def test_injected_torn_write_mid_run(self, tmp_path):
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        # The 5th low-level append dies 11 bytes in: a torn checkpoint
        # plus a dead engine, recovered from the last intact epoch.
        out, crashed = run_checkpointed(
            SQLS,
            tmp_path,
            interval=2,
            faults=FaultInjector(tear_write=(5, 11)),
            engine_kwargs=engine_kwargs,
        )
        assert crashed and out is None
        got, recovered = recover_and_finish(
            SQLS, tmp_path, engine_kwargs=engine_kwargs
        )
        assert recovered and got == base

    def test_scan_reports_and_strict_raises(self, tmp_path):
        log = CheckpointLog(tmp_path / "x.log")
        log.append(KIND_GATEWAY, 1, b"payload-one")
        log.append(KIND_GATEWAY, 2, b"payload-two")
        with open(log.path, "ab") as fh:
            fh.write(b"\x00garbage")
        records, valid_end, error = log.scan()
        assert [r[0] for r in records] == [1, 2]
        assert error is not None
        with pytest.raises(CheckpointCorrupt):
            log.scan(strict=True)
        log.truncate(valid_end)
        records, _, error = log.scan()
        assert [r[0] for r in records] == [1, 2] and error is None

    def test_no_checkpoint_falls_back_to_full_replay(self, tmp_path):
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        # Interval beyond the run length: the crash precedes the first
        # checkpoint, recover() returns None, callers replay.
        out, crashed = run_checkpointed(
            SQLS,
            tmp_path,
            interval=10_000,
            faults=FaultInjector(crash_after_pulses=4),
            engine_kwargs=engine_kwargs,
        )
        assert crashed
        assert recover(tmp_path, build_engine(**engine_kwargs)) is None
        got, recovered = recover_and_finish(
            SQLS, tmp_path, engine_kwargs=engine_kwargs
        )
        assert not recovered and got == base


class TestHeadFastPath:
    """HEAD's record offsets accelerate recovery but never gate it."""

    def test_recovers_epoch_newer_than_stale_head(self, tmp_path):
        # A crash between the catalog append and the HEAD flip leaves a
        # fully intact epoch HEAD does not know about; the tail scan
        # past HEAD's offsets must still prefer it.
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        gateway = GatewayServer(build_engine(**engine_kwargs))
        for i, sql in enumerate(SQLS):
            gateway.register(sql, name=f"q{i}")
        manager = CheckpointManager(gateway, tmp_path, interval=10_000)
        for _ in range(5):
            gateway.step()
        manager.checkpoint()
        stale_head = (tmp_path / "HEAD").read_bytes()
        for _ in range(3):
            gateway.step()
        manager.checkpoint()
        later = gateway.query("q0").next_window
        (tmp_path / "HEAD").write_bytes(stale_head)

        recovered = recover(tmp_path, build_engine(**engine_kwargs))
        assert recovered is not None
        assert recovered.query("q0").next_window == later
        while recovered.step():
            pass
        got = [snapshot(recovered.query(f"q{i}")) for i in range(len(SQLS))]
        assert got == base

    def test_bogus_head_offsets_fall_back_to_full_scan(self, tmp_path):
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        out, crashed = run_checkpointed(
            SQLS, tmp_path, interval=2, engine_kwargs=engine_kwargs
        )
        assert not crashed and out == base
        head_path = tmp_path / "HEAD"
        head = json.loads(head_path.read_text())
        # Mid-record and past-EOF offsets both fail frame validation;
        # neither may truncate intact history or break recovery.
        head["offsets"] = {
            name: (3 if i % 2 else 10**9)
            for i, name in enumerate(head["offsets"])
        }
        sizes = {
            name: (tmp_path / name).stat().st_size for name in head["files"]
        }
        head_path.write_text(json.dumps(head))
        got, recovered = recover_and_finish(
            SQLS, tmp_path, engine_kwargs=engine_kwargs
        )
        assert recovered and got == base
        for name, size in sizes.items():
            assert (tmp_path / name).stat().st_size == size


class TestTransientIO:
    def test_transient_errors_are_retried(self, tmp_path):
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        out, crashed = run_checkpointed(
            SQLS,
            tmp_path,
            interval=1,
            faults=FaultInjector(transient_io_errors=2),
            base_delay=0.0,
            engine_kwargs=engine_kwargs,
        )
        assert not crashed and out == base
        got, recovered = recover_and_finish(
            SQLS, tmp_path, engine_kwargs=engine_kwargs
        )
        assert recovered and got == base

    def test_exhausted_retries_surface_the_error(self, tmp_path):
        with pytest.raises(OSError):
            run_checkpointed(
                SQLS[:1],
                tmp_path,
                interval=1,
                faults=FaultInjector(transient_io_errors=50),
                max_retries=1,
                base_delay=0.0,
                engine_kwargs={"rows": ROWS},
            )

    def test_retry_knobs_are_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointLog(tmp_path / "x.log", max_retries=-1)
        with pytest.raises(ValueError):
            CheckpointLog(tmp_path / "x.log", max_retries=2.5)
        with pytest.raises(ValueError):
            CheckpointLog(tmp_path / "x.log", base_delay=-0.1)
        with pytest.raises(ValueError):
            CheckpointLog(tmp_path / "x.log", base_delay=0.5, max_delay=0.1)
        gateway = GatewayServer(build_engine(rows=ROWS))
        with pytest.raises(ValueError):
            CheckpointManager(gateway, tmp_path, interval=0)
        with pytest.raises(ValueError):
            CheckpointManager(gateway, tmp_path, interval=True)
        with pytest.raises(ValueError):
            CheckpointManager(gateway, tmp_path, max_retries=-2)
        assert gateway.checkpointer is None  # failed managers never attach


class TestCheckpointAudit:
    def test_verify_gateway_covers_checkpointer(self, tmp_path):
        engine = build_engine(rows=ROWS)
        gateway = GatewayServer(engine)
        for i, sql in enumerate(SQLS):
            gateway.register(sql, name=f"q{i}")
        manager = CheckpointManager(gateway, tmp_path, interval=4)
        for _ in range(10):
            gateway.step()
        verify_gateway(gateway)  # live checkpointer: no violations
        assert manager.audit_violations() == []
        # A HEAD from the future is a bookkeeping violation.
        manager.epoch -= 1
        assert manager.audit_violations()

    def test_audit_mode_run_and_recovery(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        engine_kwargs = {"rows": ROWS}
        base = _oracle(SQLS, 1, engine_kwargs)
        out, crashed = run_checkpointed(
            SQLS,
            tmp_path,
            interval=2,
            faults=FaultInjector(crash_after_pulses=9),
            engine_kwargs=engine_kwargs,
        )
        assert crashed
        got, recovered = recover_and_finish(
            SQLS, tmp_path, engine_kwargs=engine_kwargs
        )
        assert recovered and got == base


class TestMigration:
    SQL = (
        "SELECT w.sid AS s, AVG(w.val) AS a FROM"
        " timeSlidingWindow(S, 20, 5) AS w GROUP BY w.sid"
    )

    def test_migrate_query_mid_stream(self):
        base = _oracle([self.SQL], 1, {"rows": ROWS})[0]
        source = GatewayServer(build_engine(rows=ROWS))
        source.register(self.SQL, name="q0")
        for _ in range(7):
            source.step()
        target = GatewayServer(build_engine(rows=ROWS))
        handle = migrate_query(source, "q0", target)
        assert "q0" not in source._queries
        verify_gateway(source)
        while target.step():
            pass
        assert snapshot(handle) == base
        verify_gateway(target)

    def test_migrate_refuses_clashes_and_sharded(self):
        source = GatewayServer(build_engine(rows=ROWS))
        source.register(self.SQL, name="q0")
        target = GatewayServer(build_engine(rows=ROWS))
        target.register(self.SQL, name="q0")
        with pytest.raises(RecoveryError):
            migrate_query(source, "q0", target)
        sharded_source = GatewayServer(build_engine(rows=ROWS, shards=2))
        sharded_source.register(self.SQL, name="q1", shards=2)
        with pytest.raises(RecoveryError):
            migrate_query(
                sharded_source, "q1", GatewayServer(build_engine(rows=ROWS))
            )

    def test_fork_parallel_runtimes_refuse_checkpointing(self, tmp_path):
        engine = build_engine(rows=ROWS, shards=2, parallel="fork")
        gateway = GatewayServer(engine)
        registered = gateway.register(self.SQL, name="q0", shards=2)
        if registered.runtime.parallel != "fork":
            pytest.skip("fork is unavailable on this platform")
        manager = CheckpointManager(gateway, tmp_path, interval=1000)
        try:
            gateway.step()
            with pytest.raises(RecoveryError):
                manager.checkpoint()
        finally:
            gateway.deregister("q0")


class TestRebalanceHandoff:
    def _loaded_scheduler(self):
        scheduler = Scheduler(2)
        scheduler.assign_shards("hot", 4)
        # Skew shard 0: its worker now dominates the cluster load.
        scheduler.observe_shard("hot", 0, seconds=0.006)
        return scheduler

    def test_rebalance_invokes_migration_callback(self):
        scheduler = self._loaded_scheduler()
        calls = []
        moves = scheduler.rebalance(on_move=lambda *args: calls.append(args))
        assert moves and calls == moves

    def test_failed_handoff_reverts_the_move(self):
        scheduler = self._loaded_scheduler()
        loads = list(scheduler.loads)
        assignments = scheduler.shard_assignments("hot")

        def explode(*_args):
            raise RuntimeError("handoff failed")

        with pytest.raises(RuntimeError):
            scheduler.rebalance(on_move=explode)
        assert scheduler.loads == loads
        assert scheduler.shard_assignments("hot") == assignments

    def test_rebalance_state_handoff_between_gateways(self):
        """The full story: the scheduler decides, migrate_query moves the
        hot query's live state to the destination gateway, no recompute."""
        sql = TestMigration.SQL
        base = _oracle([sql], 1, {"rows": ROWS})[0]
        gateways = {
            0: GatewayServer(build_engine(rows=ROWS)),
            1: GatewayServer(build_engine(rows=ROWS)),
        }
        gateways[0].register(sql, name="hot")
        for _ in range(5):
            gateways[0].step()
        scheduler = self._loaded_scheduler()
        migrated = []

        def handoff(query, _operator, source, target):
            if query not in gateways[source]._queries:
                return  # only the first move of a query carries state
            migrated.append(
                migrate_query(gateways[source], query, gateways[target])
            )

        scheduler.rebalance(on_move=handoff)
        assert migrated
        while gateways[1].step():
            pass
        assert snapshot(migrated[0]) == base
