"""Differential tests: symmetric-hash pane joins ≡ full recompute.

The pane-join subsystem's correctness bar is the pane subsystem's: for
every two-stream continuous query — every per-side window grid
(including mismatched ones), every shard count, mqo on or off —
executing with ``incremental=True`` must produce **byte-identical**
``WindowResult`` sequences to the classic window-at-a-time recompute
path, including float aggregates whose summation order follows the
recompute hash join's row enumeration.  Late or out-of-order data on
*either* stream must disable the pane-join path permanently with
identical output, and evicted panes or outages fall back per window.
"""

import random

import pytest

import cqgen
from cqgen import (
    SCHEMA,
    SPECS,
    build_engine,
    measurement_rows,
    random_join_family,
    random_join_sql,
    snapshot,
)
from repro.exastream import (
    GatewayServer,
    IncrementalMode,
    PartitionMode,
    plan_sql,
)
from repro.siemens import FleetConfig, deploy, generate_fleet
from repro.streams import Stream, StreamSource

JOIN_SQL = (
    "SELECT a.sid AS s, COUNT(*) AS n, SUM(a.val + b.val) AS total, "
    "AVG(b.val) AS m, MIN(a.val) AS lo, MAX(b.val) AS hi "
    "FROM timeSlidingWindow(A, {ra}, {sa}) AS a, "
    "timeSlidingWindow(B, {rb}, {sb}) AS b "
    "WHERE a.sid = b.sid GROUP BY a.sid"
)

STATIC_JOIN_SQL = (
    "SELECT a.sid AS s, AVG(a.val * b.val) AS p, COUNT(*) AS n "
    "FROM timeSlidingWindow(A, {ra}, {sa}) AS a, "
    "timeSlidingWindow(B, {rb}, {sb}) AS b, sensors AS t "
    "WHERE a.sid = b.sid AND a.sid = t.sid AND t.kind = 'temp' "
    "AND a.val > 51 AND b.val < 75 GROUP BY a.sid HAVING COUNT(*) > 4"
)


def join_streams(rows_a=None, rows_b=None):
    if rows_a is None:
        rows_a = measurement_rows(n_seconds=110)
    if rows_b is None:
        rows_b = measurement_rows(n_seconds=110, value_offset=1.5)
    return {"A": rows_a, "B": rows_b}


def run_join(sqls, streams, incremental, shards=1, mqo=True,
             cache_capacity=4096):
    engine = build_engine(
        streams=streams, shards=shards, incremental=incremental, mqo=mqo,
        cache_capacity=cache_capacity,
    )
    out, gateway = cqgen.run_concurrently(sqls, engine, shards=shards)
    return out, gateway, engine


def assert_join_differential(
    sqls, streams=None, shards=1, mqo=True, cache_capacity=4096
):
    """Pane-join output ≡ fully private recompute output, byte for byte."""
    if isinstance(sqls, str):
        sqls = [sqls]
    if streams is None:
        streams = join_streams()
    pane, gateway, engine = run_join(
        sqls, streams, True, shards, mqo, cache_capacity
    )
    recompute, _, _ = run_join(
        sqls, streams, False, shards, mqo=False,
        cache_capacity=cache_capacity,
    )
    assert pane == recompute
    assert any(len(results) > 0 for results in pane)
    return pane, gateway, engine


GRIDS = [
    # r/s ∈ {1, 4, 16} per side: matched grids ...
    ((5, 5), (5, 5)),
    ((20, 5), (20, 5)),
    ((80, 5), (80, 5)),
    # ... and mismatched ones: different overlap and different slide
    # both still classify PANE_JOIN (each side pane-decomposes on its
    # own grid), while the tumbling-side entry classifies RECOMPUTE and
    # must *still* agree
    ((80, 5), (20, 5)),
    ((20, 5), (12, 4)),
    ((5, 5), (80, 5)),
]


class TestClassificationAndEngagement:
    def test_engages_and_builds_pairs(self):
        streams = join_streams()
        sql = JOIN_SQL.format(ra=80, sa=5, rb=80, sb=5)
        engine = build_engine(streams=streams)
        gateway = GatewayServer(engine)
        q = gateway.register(sql, name="j")
        assert q.plan.incremental.mode is IncrementalMode.PANE_JOIN
        while gateway.step():
            pass
        metrics = engine.metrics.query("j")
        assert metrics.windows_processed > 10
        assert metrics.windows_pane_join == metrics.windows_processed
        assert metrics.windows_incremental == metrics.windows_processed
        assert metrics.pane_pairs_built > 0

    def test_tumbling_side_recomputes(self):
        engine = build_engine(streams=join_streams())
        plan = plan_sql(
            JOIN_SQL.format(ra=5, sa=5, rb=80, sb=5), engine, name="j"
        )
        assert plan.incremental.mode is IncrementalMode.RECOMPUTE


class TestDifferentialGrids:
    @pytest.mark.parametrize("spec_a,spec_b", GRIDS)
    @pytest.mark.parametrize("shards", [1, 2])
    def test_grid_matrix(self, spec_a, spec_b, shards):
        ra, sa = spec_a
        rb, sb = spec_b
        assert_join_differential(
            JOIN_SQL.format(ra=ra, sa=sa, rb=rb, sb=sb), shards=shards
        )

    @pytest.mark.parametrize("mqo", [True, False])
    def test_static_join_having_filters(self, mqo):
        assert_join_differential(
            STATIC_JOIN_SQL.format(ra=80, sa=5, rb=20, sb=5), mqo=mqo
        )

    def test_independent_pulse_anchors(self):
        """No PULSE START: each stream anchors at its own first tuple, so
        window k closes at different instants per side."""
        rows_b = [
            (ts + 0.25, sid, val)
            for ts, sid, val in measurement_rows(n_seconds=120,
                                                 value_offset=2.0)
        ]
        assert_join_differential(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5),
            streams=join_streams(rows_b=rows_b),
        )

    def test_self_join_shares_one_reader(self):
        sql = (
            "SELECT a.sid AS s, COUNT(*) AS n, SUM(a.val - b.val) AS d "
            "FROM timeSlidingWindow(S, 40, 5) AS a, "
            "timeSlidingWindow(S, 40, 5) AS b "
            "WHERE a.sid = b.sid AND a.val < b.val GROUP BY a.sid"
        )
        streams = {"S": measurement_rows(n_seconds=120)}
        pane, _, engine = assert_join_differential(sql, streams=streams)
        assert engine.metrics.query("q0").windows_pane_join > 0

    def test_sharded_co_partitioned_join_stays_shard_local(self):
        """The equi-key partitions both streams; each shard runs its own
        symmetric-hash pane join over its slice."""
        streams = join_streams()
        engine = build_engine(streams=streams, shards=2)
        plan = plan_sql(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5), engine, name="j"
        )
        # grouped on the join key: every group lives on one shard, both
        # streams hash-partition on it (PARTITIONED — the shard-local
        # classification; a non-key grouping would classify PARTIAL)
        assert plan.partitioning.mode is PartitionMode.PARTITIONED
        assert plan.partitioning.stream_keys == {"A": 1, "B": 1}
        pane, _, engine = assert_join_differential(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5), streams=streams,
            shards=2,
        )
        per_shard = [
            e.metrics.query("q0").windows_pane_join
            for e in engine.shard_engines
        ]
        assert all(n > 0 for n in per_shard)


class TestRandomizedJoins:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_join_queries(self, seed):
        rng = random.Random(7000 + seed)
        spec_a = SPECS[seed % len(SPECS)]
        spec_b = spec_a if rng.random() < 0.5 else rng.choice(SPECS)
        sql = random_join_sql(rng, spec_a, spec_b)
        shards = 1 + (seed % 2)
        assert_join_differential(
            sql, streams=join_streams(), shards=shards
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_join_families_share_sides(self, seed):
        """Families sharing both side prefixes: differential plus actual
        side-entry interchange through the MQO registry."""
        rng = random.Random(8000 + seed)
        sqls = random_join_family(rng, (20, 5))
        pane, gateway, engine = assert_join_differential(
            sqls, streams=join_streams()
        )
        if len(sqls) > 1:
            assert gateway.mqo.stats.relation_hits > 0
        assert gateway.mqo.pipeline_count == 0  # all released


class TestMQOSharing:
    def test_side_hash_tables_shared_across_queries(self):
        sql = JOIN_SQL.format(ra=40, sa=5, rb=40, sb=5)
        pane, gateway, engine = assert_join_differential(
            [sql, sql, sql], streams=join_streams()
        )
        assert pane[0] == pane[1] == pane[2]
        assert gateway.mqo.stats.relation_hits > 0
        # identical full prefixes also interchange recompute-window
        # relations; side entries cover the pane tier
        per_query = [engine.metrics.query(f"q{i}") for i in range(3)]
        assert sum(m.mqo_relation_hits for m in per_query) > 0

    def test_one_shared_side_only(self):
        """Two queries joining stream A against different partners share
        exactly A's side pipeline."""
        streams = dict(join_streams())
        streams["C"] = measurement_rows(n_seconds=110, value_offset=3.0)
        sqls = [
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5),
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5).replace(
                "timeSlidingWindow(B", "timeSlidingWindow(C"
            ),
        ]
        pane, gateway, engine = assert_join_differential(
            sqls, streams=streams
        )
        assert gateway.mqo.stats.relation_hits > 0


class TestMidFlight:
    """Register and deregister one side's co-subscriber mid-stream; the
    surviving join query's output must not depend on any of it."""

    def _run(self, incremental):
        streams = join_streams()
        engine = build_engine(streams=streams, incremental=incremental,
                              mqo=incremental)
        gateway = GatewayServer(engine)
        survivor = gateway.register(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5), name="survivor"
        )
        other = gateway.register(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5), name="other"
        )
        single = gateway.register(
            "SELECT a.sid AS s, SUM(a.val) AS t "
            "FROM timeSlidingWindow(A, 20, 5) AS a GROUP BY a.sid",
            name="single",
        )
        gateway.step(6)
        gateway.deregister("other")  # drops one pane-join subscriber
        gateway.step(4)
        gateway.deregister("single")  # drops side A's other consumer
        late = gateway.register(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5), name="late"
        )
        while gateway.step():
            pass
        out = (snapshot(survivor), snapshot(late))
        gateway.deregister("survivor")
        gateway.deregister("late")
        return out, gateway

    def test_mid_flight_register_deregister(self):
        pane, gateway = self._run(True)
        recompute, _ = self._run(False)
        assert pane[0] == recompute[0]
        assert pane[1] == recompute[1]
        assert len(pane[0]) > 0 and len(pane[1]) > 0
        assert gateway.mqo.pipeline_count == 0
        assert gateway.shared_reader_count == 0


class TestDisorderFallback:
    """Late/out-of-order tuples on either stream permanently disable the
    pane-join path — with byte-identical output."""

    BASE_A = [(float(t), t % 4, 50.0 + t % 7) for t in range(120)]
    BASE_B = [(float(t), t % 4, 30.0 + t % 5) for t in range(120)]
    SQL = (
        "SELECT a.sid AS s, SUM(a.val * b.val) AS p, COUNT(*) AS n "
        "FROM timeSlidingWindow(A, 20, 5) AS a, "
        "timeSlidingWindow(B, 20, 5) AS b "
        "WHERE a.sid = b.sid GROUP BY a.sid"
    )

    @staticmethod
    def _swap(rows, i, j):
        rows = list(rows)
        rows[i], rows[j] = rows[j], rows[i]
        return rows

    def _run(self, rows_a, rows_b, incremental):
        engine = build_engine(
            streams={}, attach_static=False, incremental=incremental,
            mqo=False,
        )
        engine.register_stream(
            StreamSource(Stream("A", SCHEMA), lambda: iter(rows_a))
        )
        engine.register_stream(
            StreamSource(Stream("B", SCHEMA), lambda: iter(rows_b))
        )
        gateway = GatewayServer(engine)
        q = gateway.register(self.SQL, name="q")
        while gateway.step():
            pass
        return snapshot(q), q, gateway, engine

    @pytest.mark.parametrize("side", ["A", "B", "both"])
    def test_late_data_disables_pane_join_permanently(self, side):
        rows_a = list(self.BASE_A)
        rows_b = list(self.BASE_B)
        if side in ("A", "both"):
            rows_a = self._swap(rows_a, 60, 68)
        if side in ("B", "both"):
            rows_b = self._swap(rows_b, 40, 48)
        pane, q, gateway, engine = self._run(rows_a, rows_b, True)
        recompute, *_ = self._run(rows_a, rows_b, False)
        assert pane == recompute
        metrics = engine.metrics.query("q")
        # served from pane pairs up to the break, recompute afterwards
        assert 0 < metrics.windows_pane_join < metrics.windows_processed
        readers = list(q.runtime.readers.values())
        # demand bookkeeping after the break: pane refs released, batch
        # refs taken — and releasable through deregistration
        assert all(r.pane_demand == 0 for r in readers)
        assert all(r.batch_demand == 1 for r in readers)
        gateway.deregister("q")
        assert all(r.batch_demand == 0 for r in readers)

    def test_pane_eviction_forces_per_window_fallback(self):
        """A tiny cache evicts pane slices mid-run; fallback windows stay
        byte-identical without killing the pane-join path."""
        streams = join_streams(
            measurement_rows(n_seconds=140),
            measurement_rows(n_seconds=140, value_offset=1.0),
        )
        assert_join_differential(
            JOIN_SQL.format(ra=80, sa=5, rb=80, sb=5),
            streams=streams, cache_capacity=2,
        )

    def test_sensor_gap_sparse_panes(self):
        """Replay the incremental suite's gap scenario on a join plan."""
        streams = join_streams(
            measurement_rows(n_seconds=150, gap_sensor=2, gap=(40, 120)),
            measurement_rows(
                n_seconds=150, value_offset=1.5, gap_sensor=3, gap=(60, 100)
            ),
        )
        assert_join_differential(
            JOIN_SQL.format(ra=80, sa=5, rb=80, sb=5), streams=streams
        )
        assert_join_differential(
            JOIN_SQL.format(ra=80, sa=5, rb=80, sb=5), streams=streams,
            shards=2,
        )

    def test_full_outage_empty_panes(self):
        """A silent period on one stream: whole panes and windows empty
        on that side only."""
        streams = join_streams(
            measurement_rows(n_seconds=200, silence=(60, 150)),
            measurement_rows(n_seconds=200, value_offset=1.5),
        )
        assert_join_differential(
            JOIN_SQL.format(ra=80, sa=5, rb=80, sb=5), streams=streams
        )

    def test_streams_of_different_lengths(self):
        """One stream ends early: the join ends with it, both modes."""
        streams = join_streams(
            measurement_rows(n_seconds=120),
            measurement_rows(n_seconds=70, value_offset=1.5),
        )
        assert_join_differential(
            JOIN_SQL.format(ra=20, sa=5, rb=20, sb=5), streams=streams
        )


class TestSiemensPairs:
    """Every Siemens stream pair with a compatible key, pane-join vs
    recompute over the deployed fleet."""

    KEY_COLUMNS = ("sid", "tid")

    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(turbines=4, plants=2))

    def _deploy(self, fleet, incremental):
        dep = deploy(
            fleet=fleet, stream_duration=20, incremental=incremental,
            mqo=incremental,
        )
        # a second measurement stream makes (S_Msmt, S_Msmt2) a genuine
        # cross-stream pair on the sensor key
        sensors = fleet.sensor_ids[:12]
        dep.engine.register_stream(
            fleet.measurement_source(
                sensors, duration_seconds=20, stream_name="S_Msmt2"
            )
        )
        return dep

    def _pairs(self, dep):
        """All (stream, stream, key) combos sharing a key column."""
        names = sorted(dep.engine.stream_names | {"S_Msmt2"})
        pairs = []
        for i, left in enumerate(names):
            left_cols = set(
                dep.engine.stream(left).stream.schema.column_names
            )
            for right in names[i:]:
                right_cols = set(
                    dep.engine.stream(right).stream.schema.column_names
                )
                for key in self.KEY_COLUMNS:
                    if key in left_cols and key in right_cols:
                        pairs.append((left, right, key))
                        break
        return pairs

    def _sql(self, left, right, key):
        agg = (
            "COUNT(*) AS n, MIN(a.val) AS lo, AVG(b.val) AS m"
            if key == "sid"
            else "COUNT(*) AS n, MAX(a.severity) AS sev"
        )
        return (
            f"SELECT a.{key} AS k, {agg} "
            f"FROM timeSlidingWindow({left}, 10, 2) AS a, "
            f"timeSlidingWindow({right}, 10, 2) AS b "
            f"WHERE a.{key} = b.{key} GROUP BY a.{key}"
        )

    def test_every_compatible_pair_equal(self, fleet):
        outputs = {}
        for incremental in (True, False):
            dep = self._deploy(fleet, incremental)
            pairs = self._pairs(dep)
            assert len(pairs) >= 4  # both msmt pairs, self-joins, events
            queries = [
                dep.gateway.register(
                    self._sql(left, right, key), name=f"p{i}"
                )
                for i, (left, right, key) in enumerate(pairs)
            ]
            while dep.gateway.step():
                pass
            outputs[incremental] = {
                q.name: snapshot(q) for q in queries
            }
        assert outputs[True] == outputs[False]
        assert any(len(v) > 0 for v in outputs[True].values())

    def test_pane_join_engages_on_fleet_pairs(self, fleet):
        dep = self._deploy(fleet, True)
        pairs = self._pairs(dep)
        for i, (left, right, key) in enumerate(pairs):
            dep.gateway.register(self._sql(left, right, key), name=f"p{i}")
        while dep.gateway.step():
            pass
        pane_join_windows = sum(
            m.windows_pane_join
            for m in dep.engine.metrics.per_query.values()
        )
        assert pane_join_windows > 0
