"""Tests for the ontology model, parser, profile checker and normaliser."""

import pytest

from repro.ontology import (
    AtomicClass,
    Attribute,
    ClassAssertion,
    DisjointClasses,
    Existential,
    Ontology,
    OntologySyntaxError,
    PropertyAssertion,
    Role,
    SubClassOf,
    SubPropertyOf,
    Thing,
    check_owl2ql,
    normalize,
    parse_ontology,
    serialize_ontology,
)
from repro.rdf import IRI, Literal, XSD


SIE = "http://siemens.com/ontology#"


def iri(name):
    return IRI(SIE + name)


class TestModel:
    def test_role_inversion(self):
        r = Role(iri("hasPart"))
        assert r.inverted().inverse
        assert r.inverted().inverted() == r

    def test_declarations(self):
        onto = Ontology()
        cls = onto.declare_class(iri("Turbine"))
        prop = onto.declare_object_property(iri("hasPart"))
        attr = onto.declare_data_property(iri("hasValue"))
        assert cls.iri in onto.classes
        assert prop.iri in onto.object_properties
        assert attr.iri in onto.data_properties
        assert onto.term_count() == 3

    def test_add_autodeclares(self):
        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(iri("A")), AtomicClass(iri("B"))))
        assert iri("A") in onto.classes and iri("B") in onto.classes

    def test_tbox_abox_split(self):
        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(iri("A")), AtomicClass(iri("B"))))
        onto.add(ClassAssertion(AtomicClass(iri("A")), iri("a1")))
        assert len(onto.tbox()) == 1
        assert len(onto.abox()) == 1

    def test_typed_views(self):
        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(iri("A")), AtomicClass(iri("B"))))
        onto.add(SubPropertyOf(Role(iri("p")), Role(iri("q"))))
        onto.add(DisjointClasses(AtomicClass(iri("A")), AtomicClass(iri("C"))))
        assert len(onto.class_inclusions) == 1
        assert len(onto.property_inclusions) == 1
        assert len(onto.disjoint_classes) == 1


class TestNormalize:
    def test_qualified_existential_encoded(self):
        onto = Ontology()
        onto.add(
            SubClassOf(
                AtomicClass(iri("Turbine")),
                Existential(Role(iri("hasPart")), AtomicClass(iri("Assembly"))),
            )
        )
        result = normalize(onto)
        # one qualified axiom becomes three DL-Lite_R axioms
        assert len(result.axioms) == 3
        kinds = [type(a).__name__ for a in result.axioms]
        assert kinds.count("SubPropertyOf") == 1
        assert kinds.count("SubClassOf") == 2
        # no qualified existential remains
        for axiom in result.class_inclusions:
            if isinstance(axiom.sup, Existential):
                assert axiom.sup.filler is None

    def test_unqualified_untouched(self):
        onto = Ontology()
        onto.add(
            SubClassOf(AtomicClass(iri("A")), Existential(Role(iri("p"))))
        )
        result = normalize(onto)
        assert result.axioms == onto.axioms


class TestParser:
    DOC = f"""
    Prefix(sie:=<{SIE}>)
    Ontology(<http://siemens.com/ontology>
      Declaration(Class(sie:Turbine))
      Declaration(ObjectProperty(sie:hasPart))
      Declaration(DataProperty(sie:hasValue))
      SubClassOf(sie:GasTurbine sie:Turbine)
      EquivalentClasses(sie:PowerUnit sie:Turbine)
      SubClassOf(sie:Turbine ObjectSomeValuesFrom(sie:hasPart sie:Assembly))
      ObjectPropertyDomain(sie:inAssembly sie:Sensor)
      ObjectPropertyRange(sie:inAssembly sie:Assembly)
      InverseObjectProperties(sie:hasPart sie:partOf)
      SymmetricObjectProperty(sie:adjacentTo)
      SubObjectPropertyOf(sie:hasMainSensor sie:hasSensor)
      DataPropertyDomain(sie:hasValue sie:Sensor)
      DisjointClasses(sie:Turbine sie:Sensor)
      DisjointObjectProperties(sie:hasPart sie:monitors)
      ClassAssertion(sie:Turbine sie:t1)
      ObjectPropertyAssertion(sie:hasPart sie:t1 sie:a1)
      DataPropertyAssertion(sie:hasValue sie:s1 "42.5"^^xsd:double)
    )
    """

    def test_parse_counts(self):
        onto = parse_ontology(self.DOC)
        assert iri("Turbine") in onto.classes
        assert iri("hasPart") in onto.object_properties
        assert iri("hasValue") in onto.data_properties
        assert len(onto.class_assertions) == 1
        assert len(onto.property_assertions) == 2

    def test_equivalent_classes_two_inclusions(self):
        onto = parse_ontology(self.DOC)
        pairs = {(str(a.sub), str(a.sup)) for a in onto.class_inclusions}
        assert ("PowerUnit", "Turbine") in pairs
        assert ("Turbine", "PowerUnit") in pairs

    def test_inverse_properties(self):
        onto = parse_ontology(self.DOC)
        invs = [
            a
            for a in onto.property_inclusions
            if {a.sub.iri.local_name, a.sup.iri.local_name} == {"hasPart", "partOf"}
        ]
        assert len(invs) == 2
        assert any(a.sup.inverse for a in invs)

    def test_symmetric_property(self):
        onto = parse_ontology(self.DOC)
        sym = [
            a
            for a in onto.property_inclusions
            if a.sub.iri.local_name == "adjacentTo"
        ]
        assert len(sym) == 1 and sym[0].sup.inverse

    def test_domain_becomes_existential(self):
        onto = parse_ontology(self.DOC)
        domains = [
            a
            for a in onto.class_inclusions
            if isinstance(a.sub, Existential)
            and a.sub.property.iri == iri("inAssembly")
            and not a.sub.property.inverse
        ]
        assert domains and domains[0].sup == AtomicClass(iri("Sensor"))

    def test_data_assertion_literal(self):
        onto = parse_ontology(self.DOC)
        data = [
            a
            for a in onto.property_assertions
            if isinstance(a.property, Attribute)
        ]
        assert data[0].value == Literal("42.5", XSD.double)

    def test_round_trip(self):
        onto = parse_ontology(self.DOC)
        text = serialize_ontology(onto)
        again = parse_ontology(text)
        assert len(again.axioms) == len(onto.axioms)
        assert again.classes == onto.classes

    def test_syntax_error_reported(self):
        with pytest.raises(OntologySyntaxError):
            parse_ontology("Ontology( Bogus(sie:A) )")

    def test_unbound_prefix_rejected(self):
        with pytest.raises(KeyError):
            parse_ontology("Ontology( SubClassOf(nope:A nope:B) )")

    def test_thing_parsed(self):
        onto = parse_ontology(
            "Ontology( SubClassOf(<urn:A> <http://www.w3.org/2002/07/owl#Thing>) )"
        )
        assert isinstance(onto.class_inclusions[0].sup, Thing)


class TestProfile:
    def test_conformant(self):
        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(iri("A")), AtomicClass(iri("B"))))
        onto.add(
            SubClassOf(
                AtomicClass(iri("A")),
                Existential(Role(iri("p")), AtomicClass(iri("B"))),
            )
        )
        assert check_owl2ql(onto).conformant

    def test_qualified_lhs_rejected(self):
        onto = Ontology()
        onto.add(
            SubClassOf(
                Existential(Role(iri("p")), AtomicClass(iri("B"))),
                AtomicClass(iri("A")),
            )
        )
        report = check_owl2ql(onto)
        assert not report.conformant
        assert "subclass position" in str(report.violations[0])

    def test_mixed_property_inclusion_rejected(self):
        onto = Ontology()
        onto.add(SubPropertyOf(Attribute(iri("u")), Role(iri("p"))))
        assert not check_owl2ql(onto).conformant

    def test_assertions_always_fine(self):
        onto = Ontology()
        onto.add(ClassAssertion(AtomicClass(iri("A")), iri("a")))
        onto.add(PropertyAssertion(Role(iri("p")), iri("a"), iri("b")))
        assert check_owl2ql(onto).conformant
