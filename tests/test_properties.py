"""Cross-module property-based tests on core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mappings import Template
from repro.queries import canonical_form, ConjunctiveQuery, PropertyAtom
from repro.rdf import IRI, Variable
from repro.sql import parse_sql, print_query
from repro.streams import (
    AdaptiveIndexer,
    WindowCache,
    WindowSpec,
    time_sliding_window,
)


# ---------------------------------------------------------------------------
# Template inversion
# ---------------------------------------------------------------------------

_safe_values = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)


class TestTemplateProperties:
    @given(_safe_values, _safe_values)
    def test_render_match_roundtrip(self, a, b):
        template = Template("urn:x/{p}/{q}")
        rendered = template.render({"p": a, "q": b})
        extracted = template.match(rendered)
        assert extracted == {"p": a, "q": b}

    @given(_safe_values)
    def test_match_rejects_other_shapes(self, a):
        template = Template("urn:x/{p}")
        other = Template("urn:y/{p}")
        assert template.match(other.render({"p": a})) is None

    @given(st.integers(0, 10**9))
    def test_numeric_values_roundtrip_as_strings(self, n):
        template = Template("urn:n/{v}")
        assert template.match(template.render({"v": n})) == {"v": str(n)}


# ---------------------------------------------------------------------------
# Window semantics against a brute-force reference
# ---------------------------------------------------------------------------


class TestWindowProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0, 50, allow_nan=False), min_size=1, max_size=50),
        st.floats(0.5, 8),
        st.floats(0.5, 8),
    )
    def test_every_tuple_lands_in_expected_windows(self, times, rng, slide):
        rows = [(t,) for t in sorted(times)]
        spec = WindowSpec(rng, slide)
        batches = list(time_sliding_window(rows, spec, 0))
        anchor = rows[0][0]
        # reference: recompute membership per batch from the definition
        for batch in batches:
            end = anchor + batch.window_id * slide
            assert batch.end == pytest.approx(end)
            expected = [t for (t,) in rows if end - rng <= t <= end]
            assert [t for (t,) in batch.tuples] == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0, 30, allow_nan=False), min_size=1, max_size=40))
    def test_window_ids_contiguous(self, times):
        rows = [(t,) for t in sorted(times)]
        batches = list(time_sliding_window(rows, WindowSpec(3, 1), 0))
        assert [b.window_id for b in batches] == list(range(len(batches)))


# ---------------------------------------------------------------------------
# Adaptive indexer ≡ scan
# ---------------------------------------------------------------------------


class TestIndexerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 100)),
            min_size=0,
            max_size=60,
        ),
        st.lists(st.integers(0, 5), min_size=1, max_size=20),
    )
    def test_probe_results_independent_of_indexing(self, rows, probes):
        batch = [tuple(r) for r in rows]
        indexed = AdaptiveIndexer(probe_threshold=1, min_batch_size=1)
        scanning = AdaptiveIndexer(enabled=False)
        for value in probes:
            assert indexed.probe("b", batch, 0, value) == scanning.probe(
                "b", batch, 0, value
            )


# ---------------------------------------------------------------------------
# Window cache LRU discipline
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100), st.integers(1, 8))
    def test_capacity_never_exceeded(self, accesses, capacity):
        from repro.streams.window import WindowBatch

        cache = WindowCache(capacity=capacity)
        for window_id in accesses:
            if cache.get("s", window_id) is None:
                cache.put("s", WindowBatch(window_id, 0.0, 1.0, []))
        assert len(cache) <= capacity

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 10), min_size=2, max_size=50))
    def test_most_recent_entry_always_present(self, accesses):
        from repro.streams.window import WindowBatch

        cache = WindowCache(capacity=3)
        for window_id in accesses:
            cache.put("s", WindowBatch(window_id, 0.0, 1.0, []))
        assert ("s", accesses[-1]) in cache


# ---------------------------------------------------------------------------
# SQL printer/parser fixpoint
# ---------------------------------------------------------------------------

_idents = st.sampled_from(["a", "b", "c", "val", "ts"])


@st.composite
def simple_selects(draw):
    cols = draw(st.lists(_idents, min_size=1, max_size=3, unique=True))
    table = draw(st.sampled_from(["t", "s", "events"]))
    pred_col = draw(_idents)
    pred_val = draw(st.integers(-5, 5))
    return (
        f"SELECT {', '.join(cols)} FROM {table} "
        f"WHERE {pred_col} > {pred_val}"
    )


class TestSQLProperties:
    @settings(max_examples=60, deadline=None)
    @given(simple_selects())
    def test_print_parse_fixpoint(self, sql):
        once = print_query(parse_sql(sql))
        assert print_query(parse_sql(once)) == once


# ---------------------------------------------------------------------------
# Canonical forms
# ---------------------------------------------------------------------------


class TestCanonicalFormProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(4))))
    def test_atom_order_irrelevant(self, order):
        predicates = [IRI(f"urn:cf#p{i}") for i in range(4)]
        x, y = Variable("x"), Variable("y")
        atoms = [PropertyAtom(predicates[i], x, y) for i in range(4)]
        base = ConjunctiveQuery((x,), tuple(atoms))
        shuffled = ConjunctiveQuery((x,), tuple(atoms[i] for i in order))
        assert canonical_form(base) == canonical_form(shuffled)
