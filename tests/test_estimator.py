"""Cost-based adaptive planning: estimator properties + forced-tier
differential matrix.

The exactness contract under test: the cardinality estimator only ever
chooses *which* of the byte-identical execution tiers runs — never what
they produce.  So every eligible tier of every workload here (the 20
Siemens diagnostic tasks, seeded random CQs over estimator-hostile
streams) must yield identical :class:`WindowResult` sequences, and the
adaptive engine's choice must land inside that proven-equal set.

The property tests pin the estimator itself: filter-selectivity
monotonicity, DDL-derived cardinality bounds, and observed-stats
convergence overriding the sampled priors.
"""

import random

import pytest

from cqgen import (
    SPECS,
    adversarial_rows,
    build_engine,
    eligible_tiers,
    force_tier,
    measurement_rows,
    random_join_sql,
    random_single_stream_sql,
    run_engine,
    snapshot,
)
from repro.exastream import GatewayServer, IncrementalMode, plan_sql
from repro.exastream.estimator import cost_plan
from repro.exastream.estimator.stats import (
    CONVERGE_WINDOWS,
    DEFAULT_SELECTIVITY,
)
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet


def run_adaptive(sql, *, rows=None, streams=None, shards=1):
    """One adaptive gateway run of ``sql``; snapshot + the PlanChoice."""
    engine = build_engine(rows, streams=streams, shards=shards, adaptive=True)
    gateway = GatewayServer(engine)
    registered = gateway.register(
        sql, name="q", shards=shards if shards > 1 else None
    )
    while gateway.step():
        pass
    return snapshot(registered), registered.plan.choice


class TestForcedTierSiemens:
    """Every eligible tier x all 20 tasks x shards in {1, 2}."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(turbines=4, plants=2))

    def _run_all(self, fleet, *, shards=1, **deploy_kwargs):
        dep = deploy(
            fleet=fleet, stream_duration=20, shards=shards, **deploy_kwargs
        )
        with dep.session() as session:
            handles = [
                session.submit(
                    task.starql,
                    name=f"t{task.task_id}",
                    shards=shards if shards > 1 else None,
                )
                for task in diagnostic_catalog()
            ]
            while session.step(1):
                pass
            results = {
                handle.registered.name: snapshot(handle.registered)
                for handle in handles
            }
            choices = {
                handle.registered.name: handle.registered.plan.choice
                for handle in handles
            }
        return results, choices

    @pytest.fixture(scope="class")
    def matrix(self, fleet):
        runs = {}
        for shards in (1, 2):
            runs["ceiling", shards] = self._run_all(
                fleet, shards=shards, incremental=True
            )[0]
            runs["recompute", shards] = self._run_all(
                fleet, shards=shards, incremental=False
            )[0]
            runs["adaptive", shards] = self._run_all(
                fleet, shards=shards, adaptive=True
            )
        return runs

    def test_all_cells_byte_identical(self, matrix):
        reference = matrix["ceiling", 1]
        assert any(len(v) > 0 for v in reference.values())
        for key, run in matrix.items():
            results = run[0] if isinstance(run, tuple) else run
            assert results.keys() == reference.keys()
            for name in reference:
                assert results[name] == reference[name], (key, name)

    def test_adaptive_choices_recorded(self, matrix):
        _, choices = matrix["adaptive", 1]
        assert all(choice is not None for choice in choices.values())
        # the dense Siemens streams make the pane tiers pay off: the
        # estimator must keep at least some plans at their ceiling
        kept = [
            c for c in choices.values()
            if c.chosen is not IncrementalMode.RECOMPUTE
        ]
        assert kept
        for choice in choices.values():
            modes = [tier.mode for tier in choice.tier_costs]
            assert IncrementalMode.RECOMPUTE in modes
            assert choice.chosen in modes


class TestForcedTierRandom:
    """Seeded random CQs over adversarial streams, all tiers + adaptive."""

    @pytest.mark.parametrize("seed", range(6))
    def test_single_stream(self, seed):
        rng = random.Random(7000 + seed)
        rows = adversarial_rows(random.Random(7100 + seed))
        r, s = SPECS[seed % len(SPECS)]
        sql = random_single_stream_sql(rng, r, s)
        plan = plan_sql(sql, build_engine(rows), name="probe")
        reference = None
        for tier in eligible_tiers(plan):
            for shards in (1, 2):
                out = run_engine(
                    build_engine(rows, shards=shards),
                    sql,
                    shards=shards,
                    forced_tier=tier,
                )
                if reference is None:
                    reference = out
                assert out == reference, (tier.name, shards)
        adaptive, choice = run_adaptive(sql, rows=rows)
        assert adaptive == reference
        assert choice is not None
        assert choice.chosen in eligible_tiers(plan)

    @pytest.mark.parametrize("seed", range(3))
    def test_two_stream_join(self, seed):
        rng = random.Random(8000 + seed)
        streams = {
            "A": adversarial_rows(random.Random(8100 + seed)),
            "B": adversarial_rows(random.Random(8200 + seed)),
        }
        sql = random_join_sql(rng, (20, 5))
        plan = plan_sql(sql, build_engine(streams=streams), name="probe")
        reference = None
        for tier in eligible_tiers(plan):
            out = run_engine(
                build_engine(streams=streams), sql, forced_tier=tier
            )
            if reference is None:
                reference = out
            assert out == reference, tier.name
        adaptive, choice = run_adaptive(sql, streams=streams)
        assert adaptive == reference
        assert choice.chosen in eligible_tiers(plan)


class TestEstimatorProperties:
    def _catalog(self, rows):
        return build_engine(rows, adaptive=True).estimator

    def _filters(self, sql):
        """The single-alias filter predicates of one planned query."""
        engine = build_engine(measurement_rows(n_seconds=30))
        return list(plan_sql(sql, engine, name="probe").filters)

    def test_selectivity_monotone_under_conjunction(self):
        """More selective filter => lower (or equal) estimate."""
        catalog = self._catalog(measurement_rows(n_seconds=120))
        base = "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w"
        loose = self._filters(base + " WHERE w.val > 52")
        strict = self._filters(base + " WHERE w.val > 52 AND w.sid < 3")
        sel_loose = catalog.selectivity("S", "w", loose)
        sel_strict = catalog.selectivity("S", "w", strict)
        assert 0.0 <= sel_strict <= sel_loose <= 1.0
        assert catalog.selectivity("S", "w", ()) == 1.0

    def test_selectivity_tracks_threshold(self):
        """Raising a value threshold never raises the estimate."""
        catalog = self._catalog(measurement_rows(n_seconds=120))
        base = "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w"
        estimates = [
            catalog.selectivity(
                "S", "w", self._filters(f"{base} WHERE w.val > {threshold}")
            )
            for threshold in (45, 55, 65, 80)
        ]
        assert estimates == sorted(estimates, reverse=True)
        assert estimates[0] > estimates[-1]

    def test_key_cardinality_bounded_by_ddl(self):
        """Estimates never exceed the mapping/DDL-derived key bound.

        The stream sample carries 12 distinct sensor ids, but the
        attached static ``sensors`` table (the DDL side of the mapping)
        only holds 6 rows — the estimator must clamp to the smaller.
        """
        rows = measurement_rows(n_seconds=60, n_sensors=12)
        catalog = self._catalog(rows)  # static_db() holds 6 sensors
        assert catalog.key_bound("sid") == 6
        assert catalog.key_cardinality("S", "sid") <= 6
        # an unmapped column has no bound: the sample alone rules
        assert catalog.key_bound("val") is None
        assert catalog.key_cardinality("S", "sid") >= 1.0

    def test_default_selectivity_without_sample(self):
        catalog = self._catalog([])
        filters = self._filters(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w "
            "WHERE w.val > 52"
        )
        assert catalog.selectivity("S", "w", filters) == DEFAULT_SELECTIVITY

    def test_observed_stats_override_priors_after_convergence(self):
        """Observed cardinalities take over once enough windows ran."""
        rows = measurement_rows(n_seconds=60)
        engine = build_engine(rows, adaptive=True)
        gateway = GatewayServer(engine)
        sql = (
            "SELECT w.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 20, 5) AS w "
            "WHERE w.val > 55 GROUP BY w.sid"
        )
        gateway.register(sql, name="q")
        catalog = engine.estimator
        prior = 0.987  # deliberately wrong prior
        for _ in range(CONVERGE_WINDOWS - 1):
            assert gateway.step(1)
        catalog.refresh(gateway.metrics_snapshot())
        assert (
            catalog.effective_selectivity("q", "filter:w", prior) == prior
        ), "prior must hold before convergence"
        while gateway.step(1):
            pass
        catalog.refresh(gateway.metrics_snapshot())
        assert catalog.observed_windows("q") >= CONVERGE_WINDOWS
        observed = catalog.observed_selectivity("q", "filter:w")
        assert observed is not None and 0.0 < observed < 0.9
        effective = catalog.effective_selectivity("q", "filter:w", prior)
        assert effective == observed != prior

    def test_refresh_is_idempotent(self):
        rows = measurement_rows(n_seconds=60)
        engine = build_engine(rows, adaptive=True)
        gateway = GatewayServer(engine)
        gateway.register(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w "
            "WHERE w.val > 55",
            name="q",
        )
        while gateway.step(1):
            pass
        catalog = engine.estimator
        catalog.refresh(gateway.metrics_snapshot())
        first = catalog.observed_selectivity("q", "filter:w")
        catalog.refresh(gateway.metrics_snapshot())
        assert catalog.observed_selectivity("q", "filter:w") == first


class TestPlanChoice:
    def test_demote_only_choice_set(self):
        """The chosen tier is always the ceiling or RECOMPUTE."""
        rng = random.Random(42)
        for seed in range(8):
            rows = adversarial_rows(random.Random(9000 + seed))
            r, s = SPECS[seed % len(SPECS)]
            sql = random_single_stream_sql(rng, r, s)
            engine = build_engine(rows, adaptive=True)
            plan = plan_sql(sql, engine, name="q")
            choice = cost_plan(plan, engine.estimator)
            assert choice.chosen in (choice.ceiling, IncrementalMode.RECOMPUTE)
            assert choice.tier_cost(IncrementalMode.RECOMPUTE) is not None

    def test_sparse_fine_slide_demotes_at_registration(self):
        """The pane trap: sparse stream, fine slide, many groups."""
        rows = [(float(t), (t // 3) % 6, 50.0 + t) for t in range(0, 200, 3)]
        sql = (
            "SELECT w.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 40, 2) AS w GROUP BY w.sid"
        )
        out, choice = run_adaptive(sql, rows=rows)
        assert choice.ceiling is IncrementalMode.PANE_INCREMENTAL
        assert choice.chosen is IncrementalMode.RECOMPUTE
        assert choice.demoted_at_registration
        assert "pane" in choice.reason
        oracle = run_engine(build_engine(rows, incremental=False), sql)
        assert out == oracle

    def test_dense_overlap_keeps_pane_tier(self):
        rows = measurement_rows(n_seconds=120)
        sql = (
            "SELECT w.sid AS s, AVG(w.val) AS a "
            "FROM timeSlidingWindow(S, 80, 5) AS w GROUP BY w.sid"
        )
        out, choice = run_adaptive(sql, rows=rows)
        assert choice.chosen is IncrementalMode.PANE_INCREMENTAL
        assert not choice.demoted_at_registration
        oracle = run_engine(build_engine(rows), sql)
        assert out == oracle

    def test_ana050_diagnostic_in_explain(self):
        from repro.analysis import analyze_plan

        rows = measurement_rows(n_seconds=60)
        engine = build_engine(rows, adaptive=True)
        gateway = GatewayServer(engine)
        registered = gateway.register(
            "SELECT w.sid AS s, COUNT(*) AS n "
            "FROM timeSlidingWindow(S, 20, 5) AS w "
            "WHERE w.val > 55 GROUP BY w.sid",
            name="q",
        )
        while gateway.step(1):
            pass
        report = analyze_plan(
            registered.plan, engine, gateway=gateway, name="q"
        )
        infos = [d.message for d in report if d.code == "ANA050"]
        assert any("chose" in m and "ceiling" in m for m in infos)
        # after the run, the estimated-vs-observed comparison appears
        assert any("observed" in m for m in infos)

    def test_non_adaptive_engine_attaches_no_choice(self):
        rows = measurement_rows(n_seconds=30)
        engine = build_engine(rows)
        gateway = GatewayServer(engine)
        registered = gateway.register(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(S, 20, 5) AS w",
            name="q",
        )
        assert engine.estimator is None
        assert registered.plan.choice is None
        assert registered.guard is None
