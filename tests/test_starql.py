"""Tests for STARQL: parser, macros, translator and the equivalence of
the compiled relational path with the reference semantics."""

import pytest

# These modules predate (and deliberately cover) the deprecated batch
# wrappers -- run(max_windows=/on_result=/keep_results=) compat stays
# tested without warning noise in tier-1 output.
pytestmark = pytest.mark.filterwarnings(
    r"ignore:.*run\(\) is deprecated:DeprecationWarning"
)


from repro.exastream import GatewayServer, StreamEngine
from repro.mappings import (
    ColumnSpec,
    MappingAssertion,
    MappingCollection,
    Template,
    TemplateSpec,
)
from repro.ontology import parse_ontology
from repro.rdf import IRI, Namespace, Variable, XSD
from repro.relational import Column, Database, Schema, SQLType, Table
from repro.starql import (
    AggregateComparison,
    Comparison,
    Exists,
    Forall,
    GraphPattern,
    HavingEvaluator,
    Implies,
    MacroCall,
    MacroRegistry,
    RelationalStates,
    ReferenceEvaluator,
    STARQLSyntaxError,
    STARQLTranslator,
    TranslationError,
    parse_aggregate_macro,
    parse_document,
    parse_duration,
    parse_starql,
    static_abox_graph,
)
from repro.streams import ListSource, Stream, StreamSchema

SIE = Namespace("http://siemens.com/ontology#")

FIG1_QUERY = """
PREFIX sie: <http://siemens.com/ontology#>
PREFIX : <http://www.optique-project.eu/siemens#>
CREATE STREAM S_out AS
CONSTRUCT GRAPH NOW { ?c2 rdf:type :MonInc }
FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration,
STATIC DATA <http://x/ABoxstatic>, ONTOLOGY <http://x/TBox>
USING PULSE WITH START = "00:10:00CET", FREQUENCY = "1S"
WHERE {?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c2 sie:inAssembly ?c1.}
SEQUENCE BY StdSeq AS seq
HAVING MONOTONIC.HAVING(?c2, sie:hasValue)
"""

FIG1_MACRO = """
PREFIX sie: <http://siemens.com/ontology#>
CREATE AGGREGATE MONOTONIC:HAVING ($var,$attr) AS
HAVING EXISTS ?k IN SEQ: GRAPH ?k { $var sie:showsFailure } AND
FORALL ?i < ?j IN seq, ?x, ?y:
(IF ( ?i < ?k AND ?j < ?k AND GRAPH ?i {$var $attr ?x}
     AND GRAPH ?j {$var $attr ?y}) THEN ?x<=?y)
"""


class TestDurations:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("PT10S", 10.0),
            ("PT1M", 60.0),
            ("PT2H", 7200.0),
            ("PT1M30S", 90.0),
            ("P1D", 86400.0),
            ("10S", 10.0),
            ("5M", 300.0),
        ],
    )
    def test_parse(self, text, seconds):
        assert parse_duration(text) == seconds

    def test_bad_duration(self):
        with pytest.raises(STARQLSyntaxError):
            parse_duration("soon")


class TestParser:
    def test_fig1_query_shape(self):
        q = parse_starql(FIG1_QUERY)
        assert q.output_stream == "S_out"
        assert q.windows[0].stream == "S_Msmt"
        assert q.windows[0].range_seconds == 10.0
        assert q.windows[0].slide_seconds == 1.0
        assert q.pulse.start_seconds == 600
        assert q.pulse.frequency_seconds == 1.0
        assert len(q.where_atoms) == 3
        assert q.sequence_method == "StdSeq"
        assert isinstance(q.having, MacroCall)
        assert q.having.name == "MONOTONIC.HAVING"

    def test_construct_class_atom_normalised(self):
        q = parse_starql(FIG1_QUERY)
        atom = q.construct_atoms[0]
        assert atom.is_class_atom
        assert atom.predicate.local_name == "MonInc"

    def test_fig1_macro_shape(self):
        m = parse_aggregate_macro(FIG1_MACRO)
        assert m.name == "MONOTONIC.HAVING"
        assert m.parameters == ("$var", "$attr")
        assert isinstance(m.body, Exists)
        body = m.body.body
        graph, forall = body.operands
        assert isinstance(graph, GraphPattern)
        assert isinstance(forall, Forall)
        assert forall.index_constraints[0].op == "<"
        assert isinstance(forall.body, Implies)

    def test_document_with_query_and_macro(self):
        queries, macros = parse_document(FIG1_QUERY + "\n" + FIG1_MACRO)
        assert len(queries) == 1 and len(macros) == 1

    def test_aggregate_comparison(self):
        q = parse_starql(
            FIG1_QUERY.replace(
                "HAVING MONOTONIC.HAVING(?c2, sie:hasValue)",
                "HAVING AVG(?c2, sie:hasValue) > 95",
            )
        )
        assert isinstance(q.having, AggregateComparison)
        assert q.having.function == "AVG"
        assert q.having.op == ">"

    def test_missing_stream_rejected(self):
        bad = """
        CREATE STREAM S AS CONSTRUCT GRAPH NOW { ?x rdf:type <urn:C> }
        FROM STATIC DATA <urn:d>
        WHERE { ?x a <urn:D> }
        """
        with pytest.raises(STARQLSyntaxError):
            parse_starql(bad)

    def test_filter_in_where(self):
        q = parse_starql(
            FIG1_QUERY.replace(
                "?c2 sie:inAssembly ?c1.",
                "?c2 sie:inAssembly ?c1. ?c2 sie:hasThreshold ?th. "
                "FILTER(?th > 100)",
            )
        )
        assert len(q.where_filters) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(STARQLSyntaxError):
            parse_starql(FIG1_QUERY + " bogus trailing")


class TestHavingEvaluator:
    """Direct checks of the macro semantics on relational states."""

    COLUMNS = {"ts": 0, "attr0": 1, "attr1": 2}

    def states(self, rows):
        return RelationalStates(
            rows,
            0,
            {SIE.hasValue: 1, SIE.showsFailure: 2},
            IRI("urn:s1"),
        )

    def macro_body(self):
        macro = parse_aggregate_macro(FIG1_MACRO)
        registry = MacroRegistry()
        registry.register(macro)
        call = MacroCall(
            "MONOTONIC.HAVING", (Variable("s"), SIE.hasValue)
        )
        return registry.expand(call)

    def run(self, rows):
        body = self.macro_body()
        evaluator = HavingEvaluator(self.states(rows))
        return evaluator.is_satisfied(body, {Variable("s"): IRI("urn:s1")})

    def test_monotonic_with_failure(self):
        rows = [(0.0, 1.0, None), (1.0, 2.0, None), (2.0, 3.0, None),
                (3.0, None, 1)]
        assert self.run(rows)

    def test_no_failure(self):
        rows = [(0.0, 1.0, None), (1.0, 2.0, None)]
        assert not self.run(rows)

    def test_non_monotonic(self):
        rows = [(0.0, 5.0, None), (1.0, 2.0, None), (2.0, 3.0, None),
                (3.0, None, 1)]
        assert not self.run(rows)

    def test_decrease_after_failure_is_fine(self):
        rows = [(0.0, 1.0, None), (1.0, 2.0, None), (2.0, None, 1),
                (3.0, 0.5, None)]
        assert self.run(rows)

    def test_failure_flag_zero_is_no_failure(self):
        rows = [(0.0, 1.0, 0), (1.0, 2.0, 0)]
        assert not self.run(rows)

    def test_exists_over_indexes(self):
        states = self.states([(0.0, 1.0, None), (1.0, 5.0, None)])
        k = Variable("k")
        x = Variable("x")
        # a reading above 4 exists in some state
        from repro.starql import BoolOp

        cond = Exists((k,), BoolOp("AND", (
            GraphPattern(k, (
                __import__("repro.queries", fromlist=["PropertyAtom"]).PropertyAtom(
                    SIE.hasValue, Variable("s"), x
                ),
            )),
            Comparison(">", x, __import__("repro.rdf", fromlist=["Literal"]).Literal("4", XSD.integer)),
        )))
        evaluator = HavingEvaluator(states)
        assert evaluator.is_satisfied(cond, {Variable("s"): IRI("urn:s1")})


def tiny_deployment():
    """A minimal ontology/mappings/engine triple shared by tests."""
    onto = parse_ontology(
        """
        Prefix(sie:=<http://siemens.com/ontology#>)
        Ontology(<http://t/onto>
          SubClassOf(sie:TemperatureSensor sie:Sensor)
          ObjectPropertyDomain(sie:inAssembly sie:Sensor)
          ObjectPropertyRange(sie:inAssembly sie:Assembly)
          ClassAssertion(sie:Assembly sie:a1)
          ClassAssertion(sie:TemperatureSensor sie:s1)
          ClassAssertion(sie:TemperatureSensor sie:s2)
          ObjectPropertyAssertion(sie:inAssembly sie:s1 sie:a1)
          ObjectPropertyAssertion(sie:inAssembly sie:s2 sie:a1)
        )
        """
    )
    sensor_t = Template("http://siemens.com/ontology#{sid}")
    assembly_t = Template("http://siemens.com/ontology#{aid}")
    mc = MappingCollection()
    mc.add(MappingAssertion.for_class(
        SIE.Sensor, TemplateSpec(sensor_t), "SELECT sid FROM sensors",
        source_name="db"))
    mc.add(MappingAssertion.for_class(
        SIE.TemperatureSensor, TemplateSpec(sensor_t),
        "SELECT sid FROM sensors WHERE kind = 'temperature'",
        source_name="db"))
    mc.add(MappingAssertion.for_class(
        SIE.Assembly, TemplateSpec(assembly_t),
        "SELECT aid FROM assemblies", source_name="db"))
    mc.add(MappingAssertion.for_property(
        SIE.inAssembly, TemplateSpec(sensor_t), TemplateSpec(assembly_t),
        "SELECT sid, aid FROM sensors", source_name="db"))
    mc.add(MappingAssertion.for_property(
        SIE.hasValue, TemplateSpec(sensor_t), ColumnSpec("val", XSD.double),
        "SELECT ts, sid, val FROM S_Msmt", source_name="ms", is_stream=True))
    mc.add(MappingAssertion.for_property(
        SIE.showsFailure, TemplateSpec(sensor_t),
        ColumnSpec("failure", XSD.boolean),
        "SELECT ts, sid, failure FROM S_Msmt WHERE failure = 1",
        source_name="ms", is_stream=True))

    schema = Schema("db")
    schema.add(Table("assemblies", [Column("aid", SQLType.TEXT)],
                     primary_key=("aid",)))
    schema.add(Table("sensors", [Column("sid", SQLType.TEXT),
                                 Column("aid", SQLType.TEXT),
                                 Column("kind", SQLType.TEXT)],
                     primary_key=("sid",)))
    db = Database(schema)
    db.insert("assemblies", [("a1",)])
    db.insert("sensors", [("s1", "a1", "temperature"),
                          ("s2", "a1", "temperature")])

    sschema = StreamSchema(
        (Column("ts", SQLType.REAL), Column("sid", SQLType.TEXT),
         Column("val", SQLType.REAL), Column("failure", SQLType.INTEGER)),
        time_column="ts")
    rows = []
    for t in range(12):
        rows.append((float(t), "s1", 50.0 + t, 1 if t == 8 else 0))
        rows.append((float(t), "s2", 60.0 + (1 if t % 2 == 0 else -1) * t,
                     1 if t == 8 else 0))
    engine = StreamEngine()
    engine.register_stream(ListSource(Stream("S_Msmt", sschema), rows))
    engine.attach_database("db", db)

    macros = MacroRegistry()
    macros.register(parse_aggregate_macro(FIG1_MACRO))
    translator = STARQLTranslator(
        onto, mc, engine, macros,
        primary_keys={"sensors": ("sid",), "assemblies": ("aid",)})
    return onto, mc, engine, macros, translator


class TestTranslator:
    def test_fig1_translates(self):
        _, _, engine, _, translator = tiny_deployment()
        result = translator.translate(parse_starql(FIG1_QUERY), name="fig1")
        assert result.fleet_size >= 1
        assert "timeSlidingWindow(S_Msmt" in result.sql
        assert "GROUP BY" in result.sql
        assert result.plan.aggregate is not None
        assert result.plan.windows[0].spec.range_seconds == 10.0

    def test_unknown_attribute_rejected(self):
        _, _, _, _, translator = tiny_deployment()
        bad = FIG1_QUERY.replace("sie:hasValue", "sie:noSuchAttr")
        with pytest.raises(TranslationError):
            translator.translate(parse_starql(bad))

    def test_construct_var_must_be_bound(self):
        _, _, _, _, translator = tiny_deployment()
        bad = FIG1_QUERY.replace("{ ?c2 rdf:type :MonInc }",
                                 "{ ?zz rdf:type :MonInc }")
        with pytest.raises(TranslationError):
            translator.translate(parse_starql(bad))

    def test_relational_path_matches_reference_semantics(self):
        onto, mc, engine, macros, translator = tiny_deployment()
        query = parse_starql(FIG1_QUERY.replace(
            'USING PULSE WITH START = "00:10:00CET", FREQUENCY = "1S"', ""))
        result = translator.translate(query, name="fig1")
        gateway = GatewayServer(engine)
        registered = gateway.register(result.plan)
        while gateway.step(window_limit=12):
            pass
        relational = {}
        for wr in registered.results():
            triples = set()
            for row in wr.rows:
                triples |= set(result.construct.triples_for(row))
            relational[wr.window_id] = triples

        reference = ReferenceEvaluator(
            onto, mc, engine, static_abox_graph(onto), macros)
        for ref in reference.evaluate(query, max_windows=12):
            assert relational[ref.window_id] == ref.triples

    def test_aggregate_comparison_path(self):
        onto, mc, engine, macros, translator = tiny_deployment()
        text = FIG1_QUERY.replace(
            "HAVING MONOTONIC.HAVING(?c2, sie:hasValue)",
            "HAVING AVG(?c2, sie:hasValue) > 55",
        ).replace('USING PULSE WITH START = "00:10:00CET", FREQUENCY = "1S"', "")
        result = translator.translate(parse_starql(text), name="avg_task")
        gateway = GatewayServer(engine)
        registered = gateway.register(result.plan)
        while gateway.step(window_limit=12):
            pass
        alerts = [
            result.construct.triples_for(row)[0][0].value
            for wr in registered.results()
            for row in wr.rows
        ]
        assert any("s1" in a for a in alerts)

    def test_enrichment_visible_in_static_sql(self):
        """TemperatureSensor data answers the Sensor query (T-mappings)."""
        _, _, _, _, translator = tiny_deployment()
        result = translator.translate(parse_starql(FIG1_QUERY))
        # bindings come from the sensors table (the only static source)
        assert "sensors" in result.sql


class TestSubstitutionErrors:
    def test_wrong_arity_macro_call(self):
        macros = MacroRegistry()
        macros.register(parse_aggregate_macro(FIG1_MACRO))
        from repro.starql import MacroError

        with pytest.raises(MacroError):
            macros.expand(MacroCall("MONOTONIC.HAVING", (Variable("x"),)))

    def test_unknown_macro(self):
        from repro.starql import MacroError

        with pytest.raises(MacroError):
            MacroRegistry().expand(MacroCall("NOPE", ()))
