"""Tests for the asyncio event-bus runtime: ``serve()`` vs ``step()``
differential identity across the Siemens task suite, per-subscriber
backpressure (``block`` vs ``drop_oldest``) under slow async consumers,
topic refcount release on cancellation mid-iteration (under audit),
exactly-once terminal transitions when a subscriber callback closes the
session mid-delivery, pulse accounting, and the ``repro.errors``
hierarchy with its deprecation shims."""

import asyncio
import warnings

import pytest

from repro import errors
from repro.analysis import verify_gateway
from repro.errors import QueryNotFound, ReproError, SinkOverflow
from repro.exastream import (
    BoundedResultSink,
    EventBus,
    GatewayServer,
    QueryState,
    Scheduler,
    StreamEngine,
    plan_sql,
)
from repro.siemens import FleetConfig, deploy, diagnostic_catalog, generate_fleet
from test_session import SQL, engine_with_data


def canonical(results):
    """Byte-comparable view of a result sequence (content + order)."""
    return [
        (r.query, r.window_id, r.window_end, tuple(r.columns),
         tuple(tuple(row) for row in r.rows))
        for r in results
    ]


# ---------------------------------------------------------------------------
# EventBus / Topic / Subscription units


class TestEventBusUnit:
    def test_topic_created_on_subscribe_dropped_on_close(self):
        bus = EventBus()
        assert bus.topic("q") is None
        sub = bus.subscribe("q")
        assert bus.topic("q") is not None
        assert bus.topic_refcounts == {"q": 1}
        sub.close()
        assert bus.topics == {}
        sub.close()  # idempotent

    def test_publish_without_topic_is_noop(self):
        bus = EventBus()
        bus.publish("nobody", object())  # must not raise
        assert bus.metrics.results_published == 0

    def test_fanout_delivers_to_every_subscriber(self):
        bus = EventBus()
        a = bus.subscribe("q")
        b = bus.subscribe("q")
        bus.publish("q", "r0")
        bus.publish("q", "r1")
        assert list(a._queue) == list(b._queue) == ["r0", "r1"]
        assert bus.metrics.results_published == 2
        assert bus.metrics.fanout_deliveries == 4
        assert bus.metrics.fanout == 2.0
        assert bus.metrics.peak_subscribers == 2

    def test_drop_oldest_evicts_and_counts(self):
        bus = EventBus()
        sub = bus.subscribe("q", capacity=2)
        for i in range(5):
            bus.publish("q", i)
        assert list(sub._queue) == [3, 4]
        assert sub.dropped == 3
        assert bus.metrics.results_dropped == 3

    def test_capacity_zero_discards_everything(self):
        bus = EventBus()
        sub = bus.subscribe("q", capacity=0)
        bus.publish("q", "r")
        assert len(sub) == 0
        assert sub.dropped == 1

    def test_block_policy_would_block_and_force_offer_raises(self):
        bus = EventBus()
        sub = bus.subscribe("q", capacity=1, policy=BoundedResultSink.BLOCK)
        assert not bus.would_block("q")
        bus.publish("q", "r0")
        assert sub.would_block()
        assert bus.would_block("q")
        with pytest.raises(SinkOverflow):
            bus.publish("q", "r1")
        assert list(sub._queue) == ["r0"]

    def test_subscription_validation(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.subscribe("q", capacity=-1)
        with pytest.raises(ValueError):
            bus.subscribe("q", policy="teleport")

    def test_subscribe_after_finish_ends_immediately(self):
        bus = EventBus()
        keeper = bus.subscribe("q")  # keeps the topic alive past finish
        bus.finish("q")
        late = bus.topic("q").subscribe()
        with pytest.raises(StopAsyncIteration):
            asyncio.run(late.__anext__())
        assert late.closed
        keeper.close()
        assert bus.topics == {}

    def test_iteration_drains_then_stops_and_get_returns_none(self):
        bus = EventBus()
        sub = bus.subscribe("q")
        bus.publish("q", "r0")
        bus.publish("q", "r1")
        bus.finish("q")

        async def consume():
            items = [item async for item in sub]
            return items, await sub.get()

        items, tail = asyncio.run(consume())
        assert items == ["r0", "r1"]
        assert tail is None
        assert sub.delivered == 2
        assert sub.closed
        assert bus.topics == {}

    def test_async_context_manager_closes(self):
        bus = EventBus()

        async def use():
            async with bus.subscribe("q") as sub:
                bus.publish("q", "r0")
                assert await sub.get() == "r0"
            return sub

        sub = asyncio.run(use())
        assert sub.closed
        assert bus.topics == {}

    def test_wait_timeout_backstop(self):
        bus = EventBus()

        async def park():
            await bus.wait(timeout=0.001)  # nobody wakes: must return
            bus.wake()
            await bus.wait(timeout=None)  # pre-set wake: returns at once

        asyncio.run(park())


# ---------------------------------------------------------------------------
# serve() differential identity against the step() oracle


class TestServeStepDifferential:
    def run_oracle(self, n_seconds=12):
        gateway = GatewayServer(engine_with_data(n_seconds))
        a = gateway.register(SQL, name="a", sink_capacity=None)
        b = gateway.register(SQL, name="b", sink_capacity=None)
        while gateway.step():
            pass
        return {"a": canonical(a.results()), "b": canonical(b.results())}

    def test_serve_matches_step_two_queries(self):
        oracle = self.run_oracle()

        async def run_async():
            gateway = GatewayServer(engine_with_data())
            a = gateway.register(SQL, name="a", sink_capacity=None)
            b = gateway.register(SQL, name="b", sink_capacity=None)
            streams = {"a": a.stream(), "b": b.stream()}

            async def collect(sub):
                return [result async for result in sub]

            tasks = {
                name: asyncio.create_task(collect(sub))
                for name, sub in streams.items()
            }
            await gateway.serve()
            streamed = {name: await task for name, task in tasks.items()}
            sinks = {"a": a.results(), "b": b.results()}
            return streamed, sinks

        streamed, sinks = asyncio.run(run_async())
        for name in ("a", "b"):
            assert canonical(streamed[name]) == oracle[name]
            assert canonical(sinks[name]) == oracle[name]

    def test_serve_matches_step_across_siemens_suite(self, small_fleet):
        """The acceptance differential: every catalog task, bus delivery
        byte-identical (content and per-query order) to the sync oracle."""
        tasks = diagnostic_catalog()

        oracle_dep = deploy(fleet=small_fleet, stream_duration=25)
        oracle_session = oracle_dep.session(sink_capacity=None)
        oracle_handles = {}
        for index, task in enumerate(tasks):
            name = f"task{index:02d}"
            oracle_handles[name] = oracle_session.submit(task.starql, name=name)
        while oracle_dep.step():
            pass
        oracle = {
            name: canonical(handle.registered.results())
            for name, handle in oracle_handles.items()
        }

        async_dep = deploy(fleet=small_fleet, stream_duration=25)

        async def run_async():
            session = async_dep.async_session(sink_capacity=None)
            handles = {}
            for index, task in enumerate(tasks):
                name = f"task{index:02d}"
                handles[name] = session.submit(task.starql, name=name)
            streams = {
                name: handle.stream() for name, handle in handles.items()
            }

            async def collect(sub):
                return [result async for result in sub]

            collectors = {
                name: asyncio.create_task(collect(sub))
                for name, sub in streams.items()
            }
            await session.serve()
            streamed = {name: await c for name, c in collectors.items()}
            sinks = {
                name: handle.registered.results()
                for name, handle in handles.items()
            }
            return streamed, sinks

        streamed, sinks = asyncio.run(run_async())
        assert set(streamed) == set(oracle)
        for name in oracle:
            assert canonical(streamed[name]) == oracle[name], name
            assert canonical(sinks[name]) == oracle[name], name
        assert sum(len(r) for r in oracle.values()) > 0

    def test_serve_respects_per_call_window_limit(self):
        async def run():
            gateway = GatewayServer(engine_with_data())
            q = gateway.register(SQL, name="q", sink_capacity=None)
            executed = await gateway.serve(window_limit=2)
            return q, executed

        q, executed = asyncio.run(run())
        assert executed == 2
        assert q.next_window == 2
        assert q.state is QueryState.RUNNING  # still runnable beyond the cap


# ---------------------------------------------------------------------------
# backpressure under slow async consumers


class TestBackpressure:
    def test_block_policy_defers_producer_for_slow_consumer(self):
        async def run():
            gateway = GatewayServer(engine_with_data())
            q = gateway.register(SQL, name="q", sink_capacity=None)
            sub = q.stream(capacity=1, policy=BoundedResultSink.BLOCK)
            received = []
            peak = 0

            async def slow_consumer():
                nonlocal peak
                async for result in sub:
                    peak = max(peak, len(sub) + 1)
                    received.append(result.window_id)
                    await asyncio.sleep(0.005)  # slower than the producer

            consumer = asyncio.create_task(slow_consumer())
            executed = await gateway.serve(drain_poll=0.005)
            await consumer
            return gateway, q, received, peak, executed

        gateway, q, received, peak, executed = asyncio.run(run())
        assert q.state is QueryState.COMPLETED
        assert received == list(range(q.next_window))  # nothing lost
        assert peak <= 1  # the bound held: producer deferred, never dropped
        assert gateway.bus.metrics.backpressure_deferrals > 0
        assert gateway.bus.metrics.results_dropped == 0

    def test_drop_oldest_keeps_tail_and_never_stalls(self):
        async def run():
            gateway = GatewayServer(engine_with_data())
            q = gateway.register(SQL, name="q", sink_capacity=None)
            sub = q.stream(capacity=2, policy=BoundedResultSink.DROP_OLDEST)
            executed = await gateway.serve()  # consumer never once drained
            remaining = [result.window_id async for result in sub]
            return gateway, q, sub, remaining, executed

        gateway, q, sub, remaining, executed = asyncio.run(run())
        assert executed == q.next_window
        assert remaining == [q.next_window - 2, q.next_window - 1]
        assert sub.dropped == q.next_window - 2
        assert gateway.bus.metrics.backpressure_deferrals == 0

    def test_block_sink_drained_by_pull_side_poll_under_serve(self):
        """The drain_poll backstop: sink.poll() has no wake channel, yet
        a serve() loop parked behind a full BLOCK sink must notice."""

        async def run():
            gateway = GatewayServer(engine_with_data())
            q = gateway.register(
                SQL, name="q", sink_capacity=2,
                sink_policy=BoundedResultSink.BLOCK,
            )
            polled = []

            async def puller():
                while not q.state.is_terminal:
                    polled.extend(r.window_id for r in q.poll())
                    await asyncio.sleep(0.002)
                polled.extend(r.window_id for r in q.poll())

            pull = asyncio.create_task(puller())
            executed = await gateway.serve(drain_poll=0.002)
            await pull
            return q, polled, executed

        q, polled, executed = asyncio.run(run())
        assert q.state is QueryState.COMPLETED
        assert polled == list(range(q.next_window))
        assert executed == q.next_window


# ---------------------------------------------------------------------------
# cancellation, topic refcounts, audit-mode bookkeeping


class TestCancellationRefcounts:
    def test_cancel_mid_iteration_releases_topic_ref(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")

        async def run():
            gateway = GatewayServer(engine_with_data())
            assert gateway.audit
            q = gateway.register(SQL, name="q", sink_capacity=None)
            sub_a = q.stream()
            sub_b = q.stream()
            assert gateway.bus.topic_refcounts == {"q": 2}
            gateway.step(2)  # two results queued on both subscriptions
            a_results = []

            async def consume_a():
                async for result in sub_a:
                    a_results.append(result.window_id)

            task_a = asyncio.create_task(consume_a())
            await asyncio.sleep(0)  # drains both queued, parks in __anext__
            assert a_results == [0, 1]
            task_a.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task_a
            # cancellation mid-iteration released the topic reference
            assert sub_a.closed
            assert gateway.bus.topic_refcounts == {"q": 1}
            verify_gateway(gateway)

            collector = asyncio.create_task(
                self._collect_ids(sub_b)
            )
            await gateway.serve()
            b_results = await collector
            verify_gateway(gateway)
            return gateway, q, a_results, b_results

        gateway, q, a_results, b_results = asyncio.run(run())
        assert q.state is QueryState.COMPLETED
        assert b_results == list(range(q.next_window))  # b saw everything
        assert gateway.bus.topics == {}  # last drain dropped the topic

    @staticmethod
    async def _collect_ids(sub):
        return [result.window_id async for result in sub]

    def test_deregister_finishes_live_subscriptions(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")

        async def run():
            gateway = GatewayServer(engine_with_data())
            q = gateway.register(SQL, name="q", sink_capacity=None)
            sub = q.stream()
            gateway.step(2)
            gateway.deregister("q")  # audit runs here: topic must be finished
            return gateway, [r.window_id async for r in sub]

        gateway, drained = asyncio.run(run())
        assert drained == [0, 1]  # buffered results survive the deregister
        assert gateway.bus.topics == {}


# ---------------------------------------------------------------------------
# re-entrant close mid-delivery: terminal transition exactly once


class TestReentrantClose:
    def test_session_close_inside_callback_terminal_once(self, deployment):
        session = deployment.session(sink_capacity=None)
        handle = session.submit(diagnostic_catalog()[0].starql, name="reent")
        bus = deployment.gateway.bus
        sub = handle.stream()  # live topic: finish() becomes observable
        finishes = []
        original_finish = bus.finish

        def counting_finish(name):
            finishes.append(name)
            original_finish(name)

        bus.finish = counting_finish
        try:
            handle.subscribe(lambda result: session.close())
            deployment.step(3)  # close fires inside the first delivery
        finally:
            bus.finish = original_finish
        assert finishes.count("reent") == 1  # exactly one terminal transition
        assert handle.state is QueryState.CANCELLED
        assert "reent" not in deployment.gateway
        assert session.handles == []
        session.close()  # idempotent
        # the in-flight window was delivered before the topic finished
        drained = asyncio.run(self._drain_ids(sub))
        assert drained == [0]
        verify_gateway(deployment.gateway)

    @staticmethod
    async def _drain_ids(sub):
        return [result.window_id async for result in sub]

    def test_handle_is_a_context_manager(self, deployment):
        session = deployment.session()
        with session.submit(diagnostic_catalog()[0].starql, name="ctx") as h:
            deployment.step(2)
            assert h.windows_executed == 2
        assert h.state is QueryState.CANCELLED
        assert "ctx" not in deployment.gateway
        h.close()  # idempotent


# ---------------------------------------------------------------------------
# serve() as a long-lived runtime + AsyncSession facade


class TestAsyncSessionRuntime:
    def test_serve_parks_then_picks_up_late_registration(self):
        async def run():
            gateway = GatewayServer(engine_with_data())
            server = asyncio.create_task(
                gateway.serve(stop_when_idle=False, drain_poll=0.01)
            )
            await asyncio.sleep(0.02)  # server is parked: nothing registered
            q = gateway.register(SQL, name="late", sink_capacity=None)
            got = [r.window_id async for r in q.stream()]
            server.cancel()
            with pytest.raises(asyncio.CancelledError):
                await server
            return q, got

        q, got = asyncio.run(run())
        assert q.state is QueryState.COMPLETED
        assert got == list(range(q.next_window))
        assert q.next_window > 0

    def test_async_session_context_and_drain(self, deployment):
        async def run():
            async with deployment.async_session(sink_capacity=None) as session:
                handle = session.submit(
                    diagnostic_catalog()[0].starql, name="dash", max_windows=4
                )
                drainer = asyncio.create_task(session.drain(handle))
                await asyncio.sleep(0)  # let the drainer subscribe first
                executed = await session.serve()
                results = await drainer
                state_inside = handle.state
            return handle, results, executed, state_inside

        handle, results, executed, state_inside = asyncio.run(run())
        assert state_inside is QueryState.COMPLETED
        assert [r.window_id for r in results] == [0, 1, 2, 3]
        assert executed >= 4
        # leaving the async-with closed the session's handles
        assert "dash" not in deployment.gateway

    def test_handle_aiter_shorthand(self, deployment):
        async def run():
            session = deployment.async_session(sink_capacity=None)
            handle = session.submit(
                diagnostic_catalog()[1].starql, name="short", max_windows=3
            )

            async def consume():
                return [r.window_id async for r in handle]

            collector = asyncio.create_task(consume())
            await asyncio.sleep(0)  # let the consumer subscribe first
            await session.serve()
            return await collector

        assert asyncio.run(run()) == [0, 1, 2]


# ---------------------------------------------------------------------------
# scheduler pulse accounting


class TestPulseAccounting:
    def test_observe_folds_cost_and_remove_drains(self):
        engine = engine_with_data()
        scheduler = Scheduler(2)
        plan = plan_sql(SQL, engine, name="q")
        scheduler.place(plan)
        before = sum(worker.load for worker in scheduler.workers)
        scheduler.observe("q", seconds=1.0, tuples=1000)
        after = sum(worker.load for worker in scheduler.workers)
        assert after != before  # the EMA folded the observation in
        per_query = sum(
            p.cost for p in scheduler._by_query["q"]
            if not p.operator.startswith("shard[")
        )
        assert after == pytest.approx(per_query)
        scheduler.remove("q")
        assert all(abs(w.load) < 1e-9 for w in scheduler.workers)

    def test_observe_unknown_query_is_noop(self):
        scheduler = Scheduler(2)
        scheduler.observe("ghost", seconds=1.0)
        assert all(w.load == 0 for w in scheduler.workers)

    def test_gateway_pulses_report_and_deregister_drains(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        scheduler = Scheduler(2)
        gateway = GatewayServer(engine_with_data(), scheduler=scheduler)
        gateway.register(SQL, name="q", sink_capacity=None)
        while gateway.step():
            pass
        gateway.deregister("q")  # audit asserts worker loads drained
        assert all(abs(w.load) < 1e-9 for w in scheduler.workers)


# ---------------------------------------------------------------------------
# the repro.errors hierarchy + deprecation shims


class TestErrorsHierarchy:
    def test_deregister_unknown_raises_query_not_found(self):
        gateway = GatewayServer(engine_with_data())
        with pytest.raises(QueryNotFound) as excinfo:
            gateway.deregister("ghost")
        assert isinstance(excinfo.value, KeyError)  # compat base kept
        assert isinstance(excinfo.value, ReproError)
        assert str(excinfo.value) == "query 'ghost' is not registered"
        assert excinfo.value.name == "ghost"

    def test_gateway_query_unknown_raises_query_not_found(self):
        gateway = GatewayServer(engine_with_data())
        with pytest.raises(QueryNotFound):
            gateway.query("ghost")

    def test_session_handle_unknown_raises_query_not_found(self, deployment):
        session = deployment.session()
        with pytest.raises(QueryNotFound):
            session.handle("ghost")

    def test_sink_overflow_bases(self):
        assert issubclass(SinkOverflow, ReproError)
        assert issubclass(SinkOverflow, RuntimeError)

    def test_analysis_errors_reparented_and_reexported(self):
        from repro.analysis import InvariantViolation, StrictAnalysisError

        assert errors.StrictAnalysisError is StrictAnalysisError
        assert errors.InvariantViolation is InvariantViolation
        assert issubclass(StrictAnalysisError, ReproError)
        assert issubclass(StrictAnalysisError, ValueError)  # compat base
        assert issubclass(InvariantViolation, ReproError)
        assert issubclass(InvariantViolation, AssertionError)  # compat base

    def test_errors_module_rejects_unknown_names(self):
        with pytest.raises(AttributeError):
            errors.NoSuchError


class TestDeprecationShims:
    def test_status_is_a_deprecated_alias_of_state(self, deployment):
        session = deployment.session()
        handle = session.submit(diagnostic_catalog()[0].starql, name="dep")
        with pytest.warns(DeprecationWarning, match="status\\(\\)"):
            assert handle.status() is handle.state

    def test_run_is_deprecated_but_still_works(self):
        gateway = GatewayServer(engine_with_data())
        q = gateway.register(SQL, name="q", sink_capacity=None)
        with pytest.warns(DeprecationWarning, match="run\\(\\) is deprecated"):
            gateway.run()
        assert q.state is QueryState.COMPLETED

    def test_state_property_does_not_warn(self, deployment):
        session = deployment.session()
        handle = session.submit(diagnostic_catalog()[0].starql, name="clean")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert handle.state is QueryState.REGISTERED


# ---------------------------------------------------------------------------
# fixtures


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(FleetConfig(turbines=4, plants=2, correlated_pairs=2))


@pytest.fixture()
def deployment(small_fleet):
    return deploy(fleet=small_fleet, stream_duration=25)
