"""Tests for mapping templates and the unfolding engine."""


from repro.mappings import (
    ColumnSpec,
    ConstantSpec,
    MappingAssertion,
    MappingCollection,
    Template,
    TemplateSpec,
    Unfolder,
)
from repro.queries import (
    ClassAtom,
    ConjunctiveQuery,
    Filter,
    PropertyAtom,
    UnionOfConjunctiveQueries,
)
from repro.rdf import IRI, Literal, Namespace, Variable, XSD

SIE = Namespace("http://siemens.com/ontology#")
SENSOR_T = Template("urn:data/sensor/{sid}")
ASSEMBLY_T = Template("urn:data/assembly/{aid}")

x, v, a = Variable("x"), Variable("v"), Variable("a")


class TestTemplate:
    def test_columns(self):
        t = Template("urn:{a}/x/{b}")
        assert t.columns == ("a", "b")

    def test_render(self):
        assert SENSOR_T.render({"sid": 3}) == "urn:data/sensor/3"

    def test_match(self):
        assert SENSOR_T.match("urn:data/sensor/3") == {"sid": "3"}

    def test_match_failure(self):
        assert SENSOR_T.match("urn:data/assembly/3") is None

    def test_match_does_not_cross_separators(self):
        assert SENSOR_T.match("urn:data/sensor/a/b") is None

    def test_shape(self):
        assert SENSOR_T.shape == "urn:data/sensor/{}"
        assert Template("urn:data/sensor/{other}").shape == SENSOR_T.shape


def collection():
    mc = MappingCollection()
    mc.add(
        MappingAssertion.for_class(
            SIE.Sensor, TemplateSpec(SENSOR_T), "SELECT sid FROM sensors",
            source_name="plant",
        )
    )
    mc.add(
        MappingAssertion.for_property(
            SIE.hasValue,
            TemplateSpec(SENSOR_T),
            ColumnSpec("val", XSD.double),
            "SELECT sid, val FROM measurements",
            source_name="plant",
            is_stream=True,
        )
    )
    mc.add(
        MappingAssertion.for_property(
            SIE.inAssembly,
            TemplateSpec(SENSOR_T),
            TemplateSpec(ASSEMBLY_T),
            "SELECT sid, aid FROM sensors",
            source_name="plant",
        )
    )
    return mc


PKS = {"sensors": ("sid",), "measurements": ("sid", "ts")}


def unfold_one(cq, mc=None, pks=PKS):
    unfolder = Unfolder(mc or collection(), primary_keys=pks)
    return unfolder.unfold(UnionOfConjunctiveQueries((cq,)))


class TestUnfolding:
    def test_class_atom(self):
        result = unfold_one(ConjunctiveQuery((x,), (ClassAtom(SIE.Sensor, x),)))
        assert result.fleet_size == 1
        sql = result.sql()
        assert "sensors" in sql and "urn:data/sensor/" in sql

    def test_unmapped_predicate_yields_empty(self):
        result = unfold_one(ConjunctiveQuery((x,), (ClassAtom(SIE.Unmapped, x),)))
        assert result.fleet_size == 0
        assert result.query is None
        assert result.sql() == ""

    def test_join_on_shared_variable(self):
        cq = ConjunctiveQuery(
            (x, v),
            (ClassAtom(SIE.Sensor, x), PropertyAtom(SIE.hasValue, x, v)),
        )
        result = unfold_one(cq)
        assert result.fleet_size == 1
        assert "(m0.sid = m1.sid)" in result.sql()

    def test_self_join_eliminated(self):
        cq = ConjunctiveQuery(
            (x, a),
            (ClassAtom(SIE.Sensor, x), PropertyAtom(SIE.inAssembly, x, a)),
        )
        result = unfold_one(cq)
        # both atoms read table `sensors` joined on its pk -> single scan
        assert result.sql().count("sensors") == 1

    def test_self_join_kept_without_pk_info(self):
        cq = ConjunctiveQuery(
            (x, a),
            (ClassAtom(SIE.Sensor, x), PropertyAtom(SIE.inAssembly, x, a)),
        )
        result = unfold_one(cq, pks={})
        assert result.sql().count("sensors") == 2

    def test_constant_iri_inverted_through_template(self):
        cq = ConjunctiveQuery(
            (x,),
            (PropertyAtom(SIE.inAssembly, x, IRI("urn:data/assembly/7")),),
        )
        result = unfold_one(cq)
        assert "(m0.aid = '7')" in result.sql()

    def test_incompatible_constant_prunes(self):
        cq = ConjunctiveQuery(
            (x,),
            (PropertyAtom(SIE.inAssembly, x, IRI("urn:data/sensor/7")),),
        )
        assert unfold_one(cq).fleet_size == 0

    def test_literal_constant_on_column(self):
        cq = ConjunctiveQuery(
            (x,),
            (PropertyAtom(SIE.hasValue, x, Literal("42.5", XSD.double)),),
        )
        result = unfold_one(cq)
        assert "(m0.val = 42.5)" in result.sql()

    def test_filter_translated(self):
        cq = ConjunctiveQuery(
            (x, v),
            (PropertyAtom(SIE.hasValue, x, v),),
            (Filter(">", v, Literal("90", XSD.integer)),),
        )
        result = unfold_one(cq)
        assert "(m0.val > 90)" in result.sql()

    def test_template_vs_literal_pruned(self):
        """A variable used as IRI in one atom and literal in another dies."""
        cq = ConjunctiveQuery(
            (x,),
            (ClassAtom(SIE.Sensor, x), PropertyAtom(SIE.hasValue, a, x)),
        )
        assert unfold_one(cq).fleet_size == 0

    def test_multiple_mappings_produce_union(self):
        mc = collection()
        mc.add(
            MappingAssertion.for_class(
                SIE.Sensor,
                TemplateSpec(SENSOR_T),
                "SELECT sensor_id AS sid FROM legacy_sensors",
                source_name="legacy",
            )
        )
        result = unfold_one(ConjunctiveQuery((x,), (ClassAtom(SIE.Sensor, x),)), mc)
        assert result.fleet_size == 2
        assert "UNION ALL" in result.sql()

    def test_ucq_disjuncts_merge_and_dedupe(self):
        cq = ConjunctiveQuery((x,), (ClassAtom(SIE.Sensor, x),))
        result = Unfolder(collection(), primary_keys=PKS).unfold(
            UnionOfConjunctiveQueries((cq, cq))
        )
        assert result.fleet_size == 1

    def test_stream_metadata_propagated(self):
        cq = ConjunctiveQuery((x, v), (PropertyAtom(SIE.hasValue, x, v),))
        result = unfold_one(cq)
        d = result.disjuncts[0]
        assert d.uses_stream
        assert d.stream_tables == {"measurements"}
        assert d.sources == {"plant"}

    def test_constructors_rebuild_terms(self):
        cq = ConjunctiveQuery(
            (x, v),
            (ClassAtom(SIE.Sensor, x), PropertyAtom(SIE.hasValue, x, v)),
        )
        result = unfold_one(cq)
        ctors = result.disjuncts[0].constructors
        assert ctors[x].construct("urn:data/sensor/9") == IRI("urn:data/sensor/9")
        lit = ctors[v].construct(42.5)
        assert lit == Literal("42.5", XSD.double)

    def test_constant_spec(self):
        mc = MappingCollection()
        mc.add(
            MappingAssertion.for_property(
                SIE.unit,
                TemplateSpec(SENSOR_T),
                ConstantSpec(Literal("celsius")),
                "SELECT sid FROM sensors",
            )
        )
        u = Variable("u")
        cq = ConjunctiveQuery((x, u), (PropertyAtom(SIE.unit, x, u),))
        result = unfold_one(cq, mc)
        assert result.fleet_size == 1
        assert "'celsius'" in result.sql()

    def test_executes_on_sqlite(self):
        import sqlite3

        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE sensors (sid INTEGER, aid INTEGER)")
        conn.execute("CREATE TABLE measurements (sid INTEGER, ts REAL, val REAL)")
        conn.executemany("INSERT INTO sensors VALUES (?, ?)", [(1, 10), (2, 20)])
        conn.executemany(
            "INSERT INTO measurements VALUES (?, ?, ?)",
            [(1, 0.0, 95.0), (2, 0.0, 50.0)],
        )
        cq = ConjunctiveQuery(
            (x, v),
            (ClassAtom(SIE.Sensor, x), PropertyAtom(SIE.hasValue, x, v)),
            (Filter(">", v, Literal("60", XSD.integer)),),
        )
        result = unfold_one(cq)
        rows = conn.execute(result.sql()).fetchall()
        assert rows == [("urn:data/sensor/1", 95.0)]
