"""Tests for CQs, BGP parsing, evaluation and containment."""

import pytest

from repro.queries import (
    Atom,
    BGPSyntaxError,
    ClassAtom,
    ConjunctiveQuery,
    Filter,
    PropertyAtom,
    UnionOfConjunctiveQueries,
    canonical_form,
    evaluate_cq,
    evaluate_ucq,
    find_homomorphism,
    format_bgp,
    is_contained_in,
    minimize_ucq,
    parse_bgp,
)
from repro.rdf import IRI, RDF, Graph, Literal, PrefixMap, Variable, XSD


NS = "urn:q#"


def iri(name):
    return IRI(NS + name)


x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestAtomAndCQ:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Atom(iri("p"), (x, y, z))

    def test_substitute(self):
        atom = PropertyAtom(iri("p"), x, y)
        out = atom.substitute({x: iri("a")})
        assert out.args == (iri("a"), y)

    def test_head_vars_must_be_bound(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((x,), (ClassAtom(iri("C"), y),))

    def test_existential_variables(self):
        q = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        assert q.existential_variables() == {y}

    def test_filter_evaluation(self):
        f = Filter("<", x, Literal("5", XSD.integer))
        assert f.evaluate({x: Literal("3", XSD.integer)})
        assert not f.evaluate({x: Literal("7", XSD.integer)})
        assert not f.evaluate({})  # unbound fails

    def test_filter_bad_op(self):
        with pytest.raises(ValueError):
            Filter("~", x, y)

    def test_canonical_form_renaming_invariant(self):
        q1 = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        q2 = ConjunctiveQuery((z,), (PropertyAtom(iri("p"), z, w),))
        assert canonical_form(q1) == canonical_form(q2)

    def test_canonical_form_distinguishes_shapes(self):
        q1 = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        q2 = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, x),))
        assert canonical_form(q1) != canonical_form(q2)

    def test_ucq_arity_checked(self):
        q1 = ConjunctiveQuery((x,), (ClassAtom(iri("C"), x),))
        q2 = ConjunctiveQuery((x, y), (PropertyAtom(iri("p"), x, y),))
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries((q1, q2))


class TestBGP:
    def pm(self):
        pm = PrefixMap()
        pm.bind("t", NS)
        return pm

    def test_basic(self):
        atoms, filters = parse_bgp("{?s a t:Sensor . ?s t:hasValue ?v}", self.pm())
        assert len(atoms) == 2 and not filters
        assert atoms[0].is_class_atom
        assert atoms[1].args == (Variable("s"), Variable("v"))

    def test_semicolon_and_comma(self):
        atoms, _ = parse_bgp(
            "{?s a t:Sensor ; t:locatedIn ?a , ?b}", self.pm()
        )
        assert len(atoms) == 3
        assert atoms[2].args == (Variable("s"), Variable("b"))

    def test_filter(self):
        _, filters = parse_bgp("{?s t:hasValue ?v . FILTER(?v > 90)}", self.pm())
        assert filters[0].op == ">"
        assert filters[0].right == Literal("90", XSD.integer)

    def test_typed_literal(self):
        atoms, _ = parse_bgp(
            '{?s t:hasValue "1.5"^^xsd:double}', self.pm()
        )
        assert atoms[0].args[1] == Literal("1.5", XSD.double)

    def test_iri_object(self):
        atoms, _ = parse_bgp("{?s t:inAssembly t:a1}", self.pm())
        assert atoms[0].args[1] == iri("a1")

    def test_full_iri(self):
        atoms, _ = parse_bgp("{<urn:q#s1> a t:Sensor}", self.pm())
        assert atoms[0].args[0] == iri("s1")

    def test_syntax_error(self):
        with pytest.raises(BGPSyntaxError):
            parse_bgp("{?s t:p}", self.pm())

    def test_format_roundtrip(self):
        text = "{?s a t:Sensor . ?s t:hasValue ?v . FILTER(?v >= 10)}"
        atoms, filters = parse_bgp(text, self.pm())
        rendered = format_bgp(atoms, filters, self.pm())
        atoms2, filters2 = parse_bgp(rendered, self.pm())
        assert atoms == atoms2 and filters == filters2


class TestEvaluation:
    def graph(self):
        g = Graph()
        g.add((iri("s1"), RDF.type, iri("Sensor")))
        g.add((iri("s2"), RDF.type, iri("Sensor")))
        g.add((iri("s1"), iri("inAssembly"), iri("a1")))
        g.add((iri("s2"), iri("inAssembly"), iri("a2")))
        g.add((iri("s1"), iri("hasValue"), Literal("95", XSD.integer)))
        g.add((iri("s2"), iri("hasValue"), Literal("50", XSD.integer)))
        return g

    def test_single_atom(self):
        q = ConjunctiveQuery((x,), (ClassAtom(iri("Sensor"), x),))
        assert evaluate_cq(self.graph(), q) == {(iri("s1"),), (iri("s2"),)}

    def test_join(self):
        q = ConjunctiveQuery(
            (x, y),
            (ClassAtom(iri("Sensor"), x), PropertyAtom(iri("inAssembly"), x, y)),
        )
        assert evaluate_cq(self.graph(), q) == {
            (iri("s1"), iri("a1")),
            (iri("s2"), iri("a2")),
        }

    def test_constant_in_atom(self):
        q = ConjunctiveQuery(
            (x,), (PropertyAtom(iri("inAssembly"), x, iri("a1")),)
        )
        assert evaluate_cq(self.graph(), q) == {(iri("s1"),)}

    def test_filter_applied(self):
        q = ConjunctiveQuery(
            (x,),
            (PropertyAtom(iri("hasValue"), x, y),),
            (Filter(">", y, Literal("60", XSD.integer)),),
        )
        assert evaluate_cq(self.graph(), q) == {(iri("s1"),)}

    def test_repeated_variable(self):
        g = Graph()
        g.add((iri("n1"), iri("p"), iri("n1")))
        g.add((iri("n1"), iri("p"), iri("n2")))
        q = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, x),))
        assert evaluate_cq(g, q) == {(iri("n1"),)}

    def test_empty_result(self):
        q = ConjunctiveQuery((x,), (ClassAtom(iri("Missing"), x),))
        assert evaluate_cq(self.graph(), q) == set()

    def test_ucq_union(self):
        q1 = ConjunctiveQuery((x,), (ClassAtom(iri("Sensor"), x),))
        q2 = ConjunctiveQuery(
            (x,), (PropertyAtom(iri("inAssembly"), x, iri("a1")),)
        )
        u = UnionOfConjunctiveQueries((q1, q2))
        assert evaluate_ucq(self.graph(), u) == {(iri("s1"),), (iri("s2"),)}


class TestContainment:
    def test_identity(self):
        q = ConjunctiveQuery((x,), (ClassAtom(iri("C"), x),))
        assert is_contained_in(q, q)

    def test_more_atoms_contained_in_fewer(self):
        general = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        specific = ConjunctiveQuery(
            (x,),
            (PropertyAtom(iri("p"), x, y), ClassAtom(iri("C"), x)),
        )
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_constant_specialisation(self):
        general = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        specific = ConjunctiveQuery(
            (x,), (PropertyAtom(iri("p"), x, iri("a")),)
        )
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_homomorphism_respects_head(self):
        q1 = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        q2 = ConjunctiveQuery((y,), (PropertyAtom(iri("p"), x, y),))
        # q1 answers first positions, q2 second positions
        assert find_homomorphism(q1, q2) is None

    def test_filters_checked_conservatively(self):
        no_filter = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        with_filter = ConjunctiveQuery(
            (x,),
            (PropertyAtom(iri("p"), x, y),),
            (Filter(">", y, Literal("3", XSD.integer)),),
        )
        assert is_contained_in(with_filter, no_filter)
        assert not is_contained_in(no_filter, with_filter)

    def test_minimize_removes_duplicates_and_redundant(self):
        q1 = ConjunctiveQuery((x,), (PropertyAtom(iri("p"), x, y),))
        q1_renamed = ConjunctiveQuery((z,), (PropertyAtom(iri("p"), z, w),))
        q2 = ConjunctiveQuery(
            (x,),
            (PropertyAtom(iri("p"), x, y), ClassAtom(iri("C"), x)),
        )
        result = minimize_ucq(UnionOfConjunctiveQueries((q2, q1, q1_renamed)))
        assert len(result) == 1
        assert len(result.disjuncts[0].atoms) == 1

    def test_minimize_keeps_incomparable(self):
        q1 = ConjunctiveQuery((x,), (ClassAtom(iri("A"), x),))
        q2 = ConjunctiveQuery((x,), (ClassAtom(iri("B"), x),))
        result = minimize_ucq(UnionOfConjunctiveQueries((q1, q2)))
        assert len(result) == 2
