"""Unit and property tests for the indexed RDF graph."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import IRI, Graph, Variable


S = [IRI(f"urn:s{i}") for i in range(4)]
P = [IRI(f"urn:p{i}") for i in range(3)]
O = [IRI(f"urn:o{i}") for i in range(4)]


def small_graph():
    g = Graph()
    g.add((S[0], P[0], O[0]))
    g.add((S[0], P[0], O[1]))
    g.add((S[0], P[1], O[0]))
    g.add((S[1], P[0], O[0]))
    return g


class TestGraphBasics:
    def test_len_and_contains(self):
        g = small_graph()
        assert len(g) == 4
        assert (S[0], P[0], O[0]) in g
        assert (S[3], P[0], O[0]) not in g

    def test_duplicate_add_ignored(self):
        g = small_graph()
        g.add((S[0], P[0], O[0]))
        assert len(g) == 4

    def test_discard(self):
        g = small_graph()
        g.discard((S[0], P[0], O[0]))
        assert len(g) == 3
        assert (S[0], P[0], O[0]) not in g
        assert list(g.triples(S[0], P[0], O[0])) == []

    def test_discard_absent_is_noop(self):
        g = small_graph()
        g.discard((S[3], P[2], O[3]))
        assert len(g) == 4

    def test_non_ground_add_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add((Variable("x"), P[0], O[0]))

    def test_union_operator(self):
        g1 = Graph([(S[0], P[0], O[0])])
        g2 = Graph([(S[1], P[0], O[0])])
        merged = g1 | g2
        assert len(merged) == 2
        assert len(g1) == 1  # unchanged


class TestPatternMatching:
    def test_fully_bound(self):
        g = small_graph()
        assert len(list(g.triples(S[0], P[0], O[0]))) == 1

    def test_sp_pattern(self):
        g = small_graph()
        assert len(list(g.triples(S[0], P[0], None))) == 2

    def test_po_pattern(self):
        g = small_graph()
        assert {s for s, _, _ in g.triples(None, P[0], O[0])} == {S[0], S[1]}

    def test_so_pattern(self):
        g = small_graph()
        assert len(list(g.triples(S[0], None, O[0]))) == 2

    def test_s_only(self):
        g = small_graph()
        assert len(list(g.triples(S[0], None, None))) == 3

    def test_p_only(self):
        g = small_graph()
        assert len(list(g.triples(None, P[0], None))) == 3

    def test_o_only(self):
        g = small_graph()
        assert len(list(g.triples(None, None, O[0]))) == 3

    def test_all_wildcards(self):
        g = small_graph()
        assert len(list(g.triples())) == 4

    def test_variable_treated_as_wildcard(self):
        g = small_graph()
        v = Variable("x")
        assert len(list(g.triples(v, P[0], v))) == 3

    def test_subjects_objects_value(self):
        g = small_graph()
        assert set(g.subjects(P[0], O[0])) == {S[0], S[1]}
        assert set(g.objects(S[0], P[0])) == {O[0], O[1]}
        assert g.value(S[1], P[0]) == O[0]
        assert g.value(S[3], P[0]) is None


@st.composite
def triples_strategy(draw):
    s = draw(st.sampled_from(S))
    p = draw(st.sampled_from(P))
    o = draw(st.sampled_from(O))
    return (s, p, o)


class TestGraphProperties:
    @given(st.lists(triples_strategy(), max_size=40))
    def test_indexes_agree_with_set_semantics(self, triples):
        g = Graph(triples)
        expected = set(triples)
        assert len(g) == len(expected)
        assert set(g.triples()) == expected
        for s, p, o in expected:
            assert next(g.triples(s, p, o)) == (s, p, o)
            assert (s, p, o) in set(g.triples(s, None, None))
            assert (s, p, o) in set(g.triples(None, p, None))
            assert (s, p, o) in set(g.triples(None, None, o))
            assert (s, p, o) in set(g.triples(s, p, None))
            assert (s, p, o) in set(g.triples(None, p, o))
            assert (s, p, o) in set(g.triples(s, None, o))

    @given(st.lists(triples_strategy(), max_size=30), st.lists(triples_strategy(), max_size=10))
    def test_discard_inverse_of_add(self, base, removed):
        g = Graph(base)
        for t in removed:
            g.discard(t)
        expected = set(base) - set(removed)
        assert set(g.triples()) == expected
        # every index stays consistent after removal
        for t in removed:
            assert list(g.triples(*t)) == []

    @given(st.lists(triples_strategy(), max_size=30))
    def test_copy_independent(self, triples):
        g = Graph(triples)
        c = g.copy()
        c.add((S[0], P[0], IRI("urn:extra")))
        assert len(c) == len(g) + (1 if (S[0], P[0], IRI("urn:extra")) not in set(triples) else 0)
