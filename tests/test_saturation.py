"""Tests for T-mappings (mapping saturation) and the residual ontology."""


from repro.mappings import (
    ColumnSpec,
    MappingAssertion,
    MappingCollection,
    Template,
    TemplateSpec,
)
from repro.mappings.saturation import existential_subontology, saturate_mappings
from repro.ontology import (
    AtomicClass,
    Existential,
    Ontology,
    Role,
    SubClassOf,
    SubPropertyOf,
)
from repro.rdf import Namespace, XSD

NS = Namespace("urn:sat#")
T = Template("urn:data/{id}")


def base_mappings():
    mc = MappingCollection()
    mc.add(MappingAssertion.for_class(
        NS.GasTurbine, TemplateSpec(T),
        "SELECT id FROM turbines WHERE kind = 'gas'", source_name="db"))
    mc.add(MappingAssertion.for_property(
        NS.hasMainSensor, TemplateSpec(T), TemplateSpec(Template("urn:s/{sid}")),
        "SELECT id, sid FROM sensors WHERE main = 1", source_name="db"))
    return mc


class TestSaturation:
    def test_subclass_mapping_copied_up(self):
        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(NS.GasTurbine), AtomicClass(NS.Turbine)))
        saturated = saturate_mappings(base_mappings(), onto)
        assert saturated.for_predicate(NS.Turbine)

    def test_domain_projection(self):
        onto = Ontology()
        onto.add(SubClassOf(Existential(Role(NS.hasMainSensor)), AtomicClass(NS.Turbine)))
        saturated = saturate_mappings(base_mappings(), onto)
        turbine_maps = saturated.for_predicate(NS.Turbine)
        assert turbine_maps and turbine_maps[0].is_class_mapping
        assert isinstance(turbine_maps[0].subject, TemplateSpec)

    def test_range_projection(self):
        onto = Ontology()
        onto.add(SubClassOf(
            Existential(Role(NS.hasMainSensor, inverse=True)),
            AtomicClass(NS.Sensor)))
        saturated = saturate_mappings(base_mappings(), onto)
        sensor_maps = saturated.for_predicate(NS.Sensor)
        assert sensor_maps
        # the subject is the *object* template of the property mapping
        assert sensor_maps[0].subject.template.pattern == "urn:s/{sid}"

    def test_literal_object_not_projected_to_class(self):
        mc = MappingCollection()
        mc.add(MappingAssertion.for_property(
            NS.hasValue, TemplateSpec(T), ColumnSpec("v", XSD.double),
            "SELECT id, v FROM m", source_name="db", is_stream=True))
        onto = Ontology()
        onto.add(SubClassOf(
            Existential(Role(NS.hasValue, inverse=True)), AtomicClass(NS.Value)))
        saturated = saturate_mappings(mc, onto)
        assert not saturated.for_predicate(NS.Value)

    def test_role_hierarchy_with_inverse(self):
        onto = Ontology()
        onto.add(SubPropertyOf(Role(NS.hasMainSensor), Role(NS.sensorOf, True)))
        saturated = saturate_mappings(base_mappings(), onto)
        inv_maps = saturated.for_predicate(NS.sensorOf)
        assert inv_maps
        # arguments swapped: subject is now the sensor template
        assert inv_maps[0].subject.template.pattern == "urn:s/{sid}"

    def test_identity_on_empty_tbox(self):
        mc = base_mappings()
        saturated = saturate_mappings(mc, Ontology())
        assert len(saturated) == len(mc)

    def test_pruning_removes_contained_mapping(self):
        mc = base_mappings()
        # a redundant specialisation of the GasTurbine mapping
        mc.add(MappingAssertion.for_class(
            NS.GasTurbine, TemplateSpec(T),
            "SELECT id FROM turbines WHERE kind = 'gas' AND year > 2000",
            source_name="db"))
        saturated = saturate_mappings(mc, Ontology())
        assert len(saturated.for_predicate(NS.GasTurbine)) == 1

    def test_pruning_keeps_incomparable_mappings(self):
        mc = base_mappings()
        mc.add(MappingAssertion.for_class(
            NS.GasTurbine, TemplateSpec(T),
            "SELECT id FROM legacy_turbines WHERE type = 'GT'",
            source_name="db"))
        saturated = saturate_mappings(mc, Ontology())
        assert len(saturated.for_predicate(NS.GasTurbine)) == 2

    def test_saturation_answers_match_rewriting(self):
        """Saturated unfolding == full PerfectRef unfolding (same answers)."""
        import sqlite3

        from repro.mappings import Unfolder
        from repro.queries import ClassAtom, ConjunctiveQuery
        from repro.rdf import Variable
        from repro.rewriting import PerfectRef

        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(NS.GasTurbine), AtomicClass(NS.Turbine)))
        onto.add(SubClassOf(
            Existential(Role(NS.hasMainSensor)), AtomicClass(NS.Turbine)))
        mc = base_mappings()

        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE turbines (id INTEGER, kind TEXT)")
        conn.execute("CREATE TABLE sensors (id INTEGER, sid INTEGER, main INTEGER)")
        conn.executemany("INSERT INTO turbines VALUES (?, ?)",
                         [(1, "gas"), (2, "steam")])
        conn.executemany("INSERT INTO sensors VALUES (?, ?, ?)",
                         [(2, 10, 1), (3, 11, 0)])

        x = Variable("x")
        q = ConjunctiveQuery((x,), (ClassAtom(NS.Turbine, x),))

        # path A: full rewriting over raw mappings
        ucq = PerfectRef(onto).rewrite(q)
        sql_a = Unfolder(mc).unfold(ucq).sql()
        # path B: trivial rewriting over saturated mappings
        residual = existential_subontology(onto)
        ucq_b = PerfectRef(residual).rewrite(q)
        sql_b = Unfolder(saturate_mappings(mc, onto)).unfold(ucq_b).sql()

        rows_a = set(conn.execute(sql_a).fetchall())
        rows_b = set(conn.execute(sql_b).fetchall())
        assert rows_a == rows_b == {("urn:data/1",), ("urn:data/2",)}


class TestResidualOntology:
    def test_keeps_only_existential_rhs(self):
        onto = Ontology()
        onto.add(SubClassOf(AtomicClass(NS.A), AtomicClass(NS.B)))
        onto.add(SubClassOf(AtomicClass(NS.A), Existential(Role(NS.p))))
        onto.add(SubPropertyOf(Role(NS.p), Role(NS.q)))
        residual = existential_subontology(onto)
        assert len(residual.class_inclusions) == 1
        assert isinstance(residual.class_inclusions[0].sup, Existential)
        assert len(residual.property_inclusions) == 1
