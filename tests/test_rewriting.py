"""Tests for PerfectRef enrichment, including a semantic property test.

The property test cross-checks the rewriting against a materialisation
reference: for TBoxes without existential-generating axioms, evaluating
the original query over the saturated ABox must equal evaluating the
rewritten UCQ over the raw ABox (soundness + completeness of
enrichment).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ontology import (
    AtomicClass,
    Existential,
    Ontology,
    Role,
    SubClassOf,
    SubPropertyOf,
)
from repro.queries import (
    ClassAtom,
    ConjunctiveQuery,
    PropertyAtom,
    UnionOfConjunctiveQueries,
    evaluate_cq,
    evaluate_ucq,
)
from repro.rdf import IRI, RDF, Graph, Variable
from repro.rewriting import PerfectRef


NS = "urn:r#"


def iri(name):
    return IRI(NS + name)


def cls(name):
    return AtomicClass(iri(name))


def role(name, inv=False):
    return Role(iri(name), inv)


x, y, w = Variable("x"), Variable("y"), Variable("w")


def shapes(ucq):
    """Readable disjunct shapes for assertions."""
    out = set()
    for q in ucq:
        out.add(
            tuple(
                sorted(
                    (a.predicate.local_name, len(a.args)) for a in q.atoms
                )
            )
        )
    return out


class TestClassHierarchy:
    def test_subclass_disjunct_added(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("GasTurbine"), cls("Turbine")))
        q = ConjunctiveQuery((x,), (ClassAtom(iri("Turbine"), x),))
        ucq = PerfectRef(onto).rewrite(q)
        assert shapes(ucq) == {(("Turbine", 1),), (("GasTurbine", 1),)}

    def test_chain_of_subclasses(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("A"), cls("B")))
        onto.add(SubClassOf(cls("B"), cls("C")))
        q = ConjunctiveQuery((x,), (ClassAtom(iri("C"), x),))
        assert len(PerfectRef(onto).rewrite(q)) == 3

    def test_unrelated_axioms_ignored(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("D"), cls("E")))
        q = ConjunctiveQuery((x,), (ClassAtom(iri("C"), x),))
        assert len(PerfectRef(onto).rewrite(q)) == 1


class TestDomainRange:
    def test_domain_rewrites_class_atom(self):
        onto = Ontology()
        onto.add(SubClassOf(Existential(role("inAssembly")), cls("Sensor")))
        q = ConjunctiveQuery((x,), (ClassAtom(iri("Sensor"), x),))
        ucq = PerfectRef(onto).rewrite(q)
        assert (("inAssembly", 2),) in shapes(ucq)

    def test_range_rewrites_class_atom(self):
        onto = Ontology()
        onto.add(SubClassOf(Existential(role("inAssembly", True)), cls("Assembly")))
        q = ConjunctiveQuery((x,), (ClassAtom(iri("Assembly"), x),))
        ucq = PerfectRef(onto).rewrite(q)
        assert (("inAssembly", 2),) in shapes(ucq)
        # the variable must land in object position
        prop_disjunct = next(
            d for d in ucq if d.atoms[0].predicate == iri("inAssembly")
        )
        assert prop_disjunct.atoms[0].args[1] == x

    def test_exists_axiom_applies_only_with_unbound_object(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("Turbine"), Existential(role("hasPart"))))
        bound = ConjunctiveQuery((x, y), (PropertyAtom(iri("hasPart"), x, y),))
        assert len(PerfectRef(onto).rewrite(bound)) == 1
        unbound = ConjunctiveQuery((x,), (PropertyAtom(iri("hasPart"), x, y),))
        ucq = PerfectRef(onto).rewrite(unbound)
        assert (("Turbine", 1),) in shapes(ucq)


class TestRoleInclusions:
    def test_direct(self):
        onto = Ontology()
        onto.add(SubPropertyOf(role("hasMainSensor"), role("hasSensor")))
        q = ConjunctiveQuery((x, y), (PropertyAtom(iri("hasSensor"), x, y),))
        ucq = PerfectRef(onto).rewrite(q)
        assert (("hasMainSensor", 2),) in shapes(ucq)

    def test_inverse_swaps_arguments(self):
        onto = Ontology()
        onto.add(SubPropertyOf(role("partOf"), role("hasPart", True)))
        q = ConjunctiveQuery((x, y), (PropertyAtom(iri("hasPart"), x, y),))
        ucq = PerfectRef(onto).rewrite(q)
        swapped = next(
            d for d in ucq if d.atoms[0].predicate == iri("partOf")
        )
        assert swapped.atoms[0].args == (y, x)


class TestReductionStep:
    def test_reduce_enables_existential_axiom(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("A"), Existential(role("P"))))
        q = ConjunctiveQuery(
            (x,),
            (PropertyAtom(iri("P"), x, y), PropertyAtom(iri("P"), x, w)),
        )
        ucq = PerfectRef(onto).rewrite(q)
        assert (("A", 1),) in shapes(ucq)

    def test_qualified_existential_rhs(self):
        onto = Ontology()
        onto.add(
            SubClassOf(cls("Turbine"), Existential(role("hasPart"), cls("Assembly")))
        )
        # everything with a part that is an assembly — turbines qualify
        q = ConjunctiveQuery(
            (x,),
            (PropertyAtom(iri("hasPart"), x, y), ClassAtom(iri("Assembly"), y)),
        )
        ucq = PerfectRef(onto).rewrite(q)
        assert (("Turbine", 1),) in shapes(ucq)


class TestFiltersAndStats:
    def test_filters_preserved(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("A"), cls("B")))
        from repro.queries import Filter
        from repro.rdf import Literal, XSD

        q = ConjunctiveQuery(
            (x, y),
            (ClassAtom(iri("B"), x), PropertyAtom(iri("v"), x, y)),
            (Filter(">", y, Literal("5", XSD.integer)),),
        )
        ucq = PerfectRef(onto).rewrite(q)
        assert all(len(d.filters) == 1 for d in ucq)

    def test_stats_populated(self):
        onto = Ontology()
        onto.add(SubClassOf(cls("A"), cls("B")))
        engine = PerfectRef(onto)
        engine.rewrite(ConjunctiveQuery((x,), (ClassAtom(iri("B"), x),)))
        assert engine.stats.generated >= 2
        assert engine.stats.final_size == 2

    def test_max_queries_guard(self):
        onto = Ontology()
        for i in range(30):
            onto.add(SubClassOf(cls(f"C{i}"), cls("Top")))
        engine = PerfectRef(onto, max_queries=5)
        with pytest.raises(RuntimeError):
            engine.rewrite(ConjunctiveQuery((x,), (ClassAtom(iri("Top"), x),)))


# ---------------------------------------------------------------------------
# Semantic property test: rewriting == materialisation
# ---------------------------------------------------------------------------

CLASSES = ["A", "B", "C"]
ROLES = ["p", "q"]
INDIVIDUALS = [iri(f"i{k}") for k in range(4)]


def saturate(graph, onto):
    """Materialise all TBox consequences on named individuals."""
    changed = True
    while changed:
        changed = False
        additions = []
        for axiom in onto.class_inclusions:
            sub, sup = axiom.sub, axiom.sup
            if isinstance(sup, Existential):
                continue  # existential heads create no named facts
            matches = []
            if isinstance(sub, AtomicClass):
                matches = [s for s, _, _ in graph.triples(None, RDF.type, sub.iri)]
            elif isinstance(sub, Existential) and sub.filler is None:
                prop = sub.property
                if prop.inverse:
                    matches = [o for _, _, o in graph.triples(None, prop.iri, None)]
                else:
                    matches = [s for s, _, _ in graph.triples(None, prop.iri, None)]
            for node in matches:
                triple = (node, RDF.type, sup.iri)
                if triple not in graph:
                    additions.append(triple)
        for axiom in onto.property_inclusions:
            sub, sup = axiom.sub, axiom.sup
            for s, _, o in graph.triples(None, sub.iri, None):
                pair = (o, s) if sub.inverse else (s, o)
                if sup.inverse:
                    pair = (pair[1], pair[0])
                triple = (pair[0], sup.iri, pair[1])
                if triple not in graph:
                    additions.append(triple)
        for triple in additions:
            graph.add(triple)
            changed = True
    return graph


@st.composite
def safe_tbox(draw):
    """TBoxes whose chase needs no fresh individuals."""
    onto = Ontology()
    n = draw(st.integers(0, 6))
    for _ in range(n):
        kind = draw(st.sampled_from(["cc", "dom", "rng", "rr", "rr_inv"]))
        if kind == "cc":
            a, b = draw(st.sampled_from(CLASSES)), draw(st.sampled_from(CLASSES))
            onto.add(SubClassOf(cls(a), cls(b)))
        elif kind == "dom":
            p, a = draw(st.sampled_from(ROLES)), draw(st.sampled_from(CLASSES))
            onto.add(SubClassOf(Existential(role(p)), cls(a)))
        elif kind == "rng":
            p, a = draw(st.sampled_from(ROLES)), draw(st.sampled_from(CLASSES))
            onto.add(SubClassOf(Existential(role(p, True)), cls(a)))
        elif kind == "rr":
            p, q = draw(st.sampled_from(ROLES)), draw(st.sampled_from(ROLES))
            onto.add(SubPropertyOf(role(p), role(q)))
        else:
            p, q = draw(st.sampled_from(ROLES)), draw(st.sampled_from(ROLES))
            onto.add(SubPropertyOf(role(p), role(q, True)))
    return onto


@st.composite
def random_abox(draw):
    g = Graph()
    for _ in range(draw(st.integers(0, 10))):
        if draw(st.booleans()):
            g.add(
                (
                    draw(st.sampled_from(INDIVIDUALS)),
                    RDF.type,
                    iri(draw(st.sampled_from(CLASSES))),
                )
            )
        else:
            g.add(
                (
                    draw(st.sampled_from(INDIVIDUALS)),
                    iri(draw(st.sampled_from(ROLES))),
                    draw(st.sampled_from(INDIVIDUALS)),
                )
            )
    return g


@st.composite
def random_query(draw):
    n_atoms = draw(st.integers(1, 3))
    variables = [Variable(f"v{k}") for k in range(3)]
    atoms = []
    for _ in range(n_atoms):
        if draw(st.booleans()):
            atoms.append(
                ClassAtom(
                    iri(draw(st.sampled_from(CLASSES))),
                    draw(st.sampled_from(variables)),
                )
            )
        else:
            atoms.append(
                PropertyAtom(
                    iri(draw(st.sampled_from(ROLES))),
                    draw(st.sampled_from(variables)),
                    draw(st.sampled_from(variables)),
                )
            )
    body_vars = sorted({v for a in atoms for v in a.variables()}, key=str)
    head_size = draw(st.integers(1, len(body_vars)))
    return ConjunctiveQuery(tuple(body_vars[:head_size]), tuple(atoms))


class TestRewritingSemantics:
    @settings(max_examples=60, deadline=None)
    @given(safe_tbox(), random_abox(), random_query())
    def test_rewriting_equals_materialisation(self, onto, graph, query):
        certain = evaluate_cq(saturate(graph.copy(), onto), query)
        rewritten = PerfectRef(onto).rewrite(query)
        via_rewriting = evaluate_ucq(graph, rewritten)
        assert via_rewriting == certain
