"""Tests for the EXASTREAM engine: operators, planner, gateway, scheduler,
UDFs, fusion and the cluster simulator."""

import pytest

# These modules predate (and deliberately cover) the deprecated batch
# wrappers -- run(max_windows=/on_result=/keep_results=) compat stays
# tested without warning noise in tier-1 output.
pytestmark = pytest.mark.filterwarnings(
    r"ignore:.*run\(\) is deprecated:DeprecationWarning"
)


from repro.exastream import (
    ClusterParameters,
    ClusterSimulator,
    GatewayServer,
    PlanningError,
    Relation,
    Scheduler,
    StaticTable,
    StreamEngine,
    builtin_registry,
    calibrate,
    compile_expr,
    fuse,
    hash_join,
    plan_sql,
)
from repro.relational import Column, Database, Schema, SQLType, Table
from repro.sql import BinOp, Col, Func, Lit, UnaryOp
from repro.streams import ListSource, Stream, StreamSchema


def measurement_stream(rows, name="S_Msmt"):
    schema = StreamSchema(
        (
            Column("ts", SQLType.REAL),
            Column("sid", SQLType.INTEGER),
            Column("val", SQLType.REAL),
            Column("failure", SQLType.INTEGER),
        ),
        time_column="ts",
    )
    return ListSource(Stream(name, schema), rows)


def info_db():
    schema = Schema("plant")
    schema.add(
        Table(
            "sensor_info",
            [Column("sid", SQLType.INTEGER), Column("assembly", SQLType.TEXT)],
            primary_key=("sid",),
        )
    )
    db = Database(schema)
    db.insert("sensor_info", [(1, "rotor"), (2, "stator"), (3, "burner")])
    return db


def engine_with_data(n_seconds=12):
    rows = []
    for t in range(n_seconds):
        rows.append((float(t), 1, 50.0 + t, 1 if t == 9 else 0))
        rows.append((float(t), 2, 60.0 - (t % 3), 0))
    engine = StreamEngine()
    engine.register_stream(measurement_stream(rows))
    engine.attach_database("plant", info_db())
    return engine


class TestRelationAndExpr:
    def test_colmap_with_fallback(self):
        rel = Relation(["w.ts", "w.val"], [(0.0, 1.0)])
        assert rel.index_of("w.ts") == 0
        assert rel.index_of("val") == 1

    def test_ambiguous_bare_name_not_registered(self):
        rel = Relation(["a.x", "b.x"], [])
        with pytest.raises(KeyError):
            rel.index_of("x")

    def test_compile_arithmetic(self):
        rel = Relation(["v"], [])
        fn = compile_expr(BinOp("+", Col(None, "v"), Lit(2)), rel)
        assert fn((40,)) == 42

    def test_compile_comparison_null_safe(self):
        rel = Relation(["v"], [])
        fn = compile_expr(BinOp(">", Col(None, "v"), Lit(1)), rel)
        assert fn((None,)) is False

    def test_compile_concat(self):
        rel = Relation(["v"], [])
        fn = compile_expr(BinOp("||", Lit("x"), Col(None, "v")), rel)
        assert fn((7,)) == "x7"

    def test_compile_not_and_or(self):
        rel = Relation(["v"], [])
        expr = BinOp(
            "OR",
            UnaryOp("NOT", BinOp("=", Col(None, "v"), Lit(1))),
            BinOp("=", Col(None, "v"), Lit(2)),
        )
        fn = compile_expr(expr, rel)
        assert fn((3,)) and fn((2,)) and not fn((1,))

    def test_compile_in_list(self):
        rel = Relation(["v"], [])
        fn = compile_expr(Func("IN_LIST", (Col(None, "v"), Lit(1), Lit(2))), rel)
        assert fn((1,)) and not fn((3,))

    def test_compile_like(self):
        rel = Relation(["v"], [])
        fn = compile_expr(BinOp("LIKE", Col(None, "v"), Lit("gas%")), rel)
        assert fn(("gas turbine",)) and not fn(("steam",))

    def test_scalar_udf(self):
        rel = Relation(["v"], [])
        registry = builtin_registry()
        fn = compile_expr(Func("C2F", (Col(None, "v"),)), rel, registry)
        assert fn((100.0,)) == 212.0

    def test_unknown_function_raises(self):
        rel = Relation(["v"], [])
        with pytest.raises(ValueError):
            compile_expr(Func("NOPE", (Col(None, "v"),)), rel)


class TestJoins:
    def test_hash_join(self):
        left = Relation(["a.k", "a.x"], [(1, "p"), (2, "q")])
        right = Relation(["b.k", "b.y"], [(1, "r"), (1, "s"), (3, "t")])
        joined = hash_join(left, right, ["a.k"], ["b.k"])
        assert sorted(joined.rows) == [(1, "p", 1, "r"), (1, "p", 1, "s")]
        assert joined.columns == ["a.k", "a.x", "b.k", "b.y"]

    def test_hash_join_builds_on_smaller_side_keeps_order_of_columns(self):
        left = Relation(["a.k"], [(1,), (2,), (3,)])
        right = Relation(["b.k"], [(1,)])
        joined = hash_join(left, right, ["a.k"], ["b.k"])
        assert joined.columns == ["a.k", "b.k"]
        assert joined.rows == [(1, 1)]

    def test_static_table_index_reuse(self):
        static = StaticTable(Relation(["s.k", "s.v"], [(1, "a"), (2, "b")]))
        index1 = static.index_for(["s.k"])
        index2 = static.index_for(["s.k"])
        assert index1 is index2

    def test_static_join_probe(self):
        static = StaticTable(Relation(["s.k", "s.v"], [(1, "a"), (2, "b")]))
        probe = Relation(["w.k"], [(1,), (1,), (9,)])
        joined = static.join_probe(probe, ["w.k"], ["s.k"])
        assert len(joined) == 2


class TestFusion:
    def test_fuse_empty_identity(self):
        assert fuse([])(42) == 42

    def test_fuse_composition_order(self):
        stages = [lambda x: x + 1, lambda x: x * 2, lambda x: x - 3]
        assert fuse(stages)(5) == (5 + 1) * 2 - 3

    def test_fuse_many_stages(self):
        stages = [lambda x, i=i: x + i for i in range(10)]
        assert fuse(stages)(0) == sum(range(10))


class TestPlannerAndGateway:
    def test_sql_text_round_trip_through_engine(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        q = gateway.register(
            "SELECT w.sid AS sensor, AVG(w.val) AS m "
            "FROM timeSlidingWindow(S_Msmt, 4, 2) AS w GROUP BY w.sid",
            name="avg",
        )
        while gateway.step():
            pass
        assert len(q.results()) > 0
        first = q.results()[0]
        assert first.columns == ["sensor", "m"]

    def test_stream_static_join(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        q = gateway.register(
            "SELECT s.assembly AS asm, COUNT(*) AS n "
            "FROM timeSlidingWindow(S_Msmt, 4, 2) AS w, sensor_info AS s "
            "WHERE w.sid = s.sid GROUP BY s.assembly",
            name="join",
        )
        while gateway.step(window_limit=3):
            pass
        result = q.results()[2]
        assert dict((r[0], r[1]) for r in result.rows) == {
            "rotor": 5,
            "stator": 5,
        }

    def test_filter_pushdown_semantics(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        q = gateway.register(
            "SELECT w.ts AS t, w.val AS v "
            "FROM timeSlidingWindow(S_Msmt, 2, 2) AS w "
            "WHERE w.sid = 1 AND w.val > 52",
            name="filtered",
        )
        while gateway.step(window_limit=4):
            pass
        values = [row for r in q.results() for row in r.rows]
        assert values and all(v > 52 for _, v in values)

    def test_having(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        q = gateway.register(
            "SELECT w.sid AS s, MAX(w.val) AS mx "
            "FROM timeSlidingWindow(S_Msmt, 4, 4) AS w "
            "GROUP BY w.sid HAVING MAX(w.val) > 56",
            name="hv",
        )
        while gateway.step():
            pass
        for result in q.results():
            for row in result.rows:
                assert row[1] > 56

    def test_aggregate_without_group_by(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        q = gateway.register(
            "SELECT COUNT(*) AS n FROM timeSlidingWindow(S_Msmt, 2, 2) AS w",
            name="count",
        )
        while gateway.step(window_limit=2):
            pass
        assert q.results()[1].rows[0][0] == 6  # ts in [0,2] x 2 sensors

    def test_sequence_udf_in_sql(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        q = gateway.register(
            "SELECT w.sid AS s, MONOTONIC_HAVING(w.ts, w.val, w.failure) AS a "
            "FROM timeSlidingWindow(S_Msmt, 10, 1) AS w GROUP BY w.sid",
            name="mono",
        )
        while gateway.step(window_limit=10):
            pass
        final = dict(q.results()[9].rows)
        assert final[1] is True and final[2] is False

    def test_planner_rejects_bad_queries(self):
        engine = engine_with_data()
        with pytest.raises(PlanningError):
            plan_sql("SELECT a FROM nowhere", engine)
        with pytest.raises(PlanningError):
            plan_sql("SELECT a FROM sensor_info", engine)  # no stream
        with pytest.raises(PlanningError):
            plan_sql("SELECT S_Msmt.val FROM S_Msmt", engine)  # unwrapped
        with pytest.raises(PlanningError):
            plan_sql(
                "SELECT w.val FROM timeSlidingWindow(S_Msmt, 5, 1) AS w "
                "HAVING COUNT(*) > 1",
                engine,
            )

    def test_duplicate_name_rejected(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        gateway.register(
            "SELECT w.ts AS t FROM timeSlidingWindow(S_Msmt, 2, 2) AS w",
            name="dup",
        )
        with pytest.raises(ValueError):
            gateway.register(
                "SELECT w.ts AS t FROM timeSlidingWindow(S_Msmt, 2, 2) AS w",
                name="dup",
            )

    def test_shared_readers_across_queries(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        sql = (
            "SELECT w.sid AS s, AVG(w.val) AS m "
            "FROM timeSlidingWindow(S_Msmt, 4, 2) AS w GROUP BY w.sid"
        )
        gateway.register(sql, name="a")
        gateway.register(sql, name="b")
        while gateway.step(window_limit=4):
            pass
        # second query hits the cache populated by the first (batch hits
        # on the recompute path, pane hits on the incremental path)
        stats = engine.cache.stats
        assert stats.hits + stats.pane_hits > 0

    def test_metrics_populated(self):
        engine = engine_with_data()
        gateway = GatewayServer(engine)
        gateway.register(
            "SELECT w.ts AS t FROM timeSlidingWindow(S_Msmt, 2, 2) AS w",
            name="m",
        )
        while gateway.step():
            pass
        metrics = engine.metrics.per_query["m"]
        assert metrics.tuples_in > 0
        assert metrics.windows_processed > 0

    def test_deregister_releases_scheduler_load(self):
        engine = engine_with_data()
        scheduler = Scheduler(2)
        gateway = GatewayServer(engine, scheduler=scheduler)
        gateway.register(
            "SELECT w.ts AS t FROM timeSlidingWindow(S_Msmt, 2, 2) AS w",
            name="x",
        )
        assert scheduler.total_load() > 0
        gateway.deregister("x")
        assert scheduler.total_load() == pytest.approx(0.0)


class TestScheduler:
    def plan(self, name="p", range_s=10.0):
        engine = engine_with_data()
        return plan_sql(
            f"SELECT w.sid AS s, COUNT(*) AS n "
            f"FROM timeSlidingWindow(S_Msmt, {range_s}, 1) AS w GROUP BY w.sid",
            engine,
            name=name,
        )

    def test_balance_across_workers(self):
        scheduler = Scheduler(4)
        for i in range(16):
            scheduler.place(self.plan(name=f"q{i}"))
        assert scheduler.balance() < 1.3

    def test_scan_affinity(self):
        scheduler = Scheduler(4)
        p1 = scheduler.place(self.plan(name="q1"))
        p2 = scheduler.place(self.plan(name="q2"))
        scans1 = [p for p in p1 if p.operator.startswith("scan[")]
        scans2 = [p for p in p2 if p.operator.startswith("scan[")]
        assert scans1[0].worker == scans2[0].worker

    def test_remove(self):
        scheduler = Scheduler(2)
        scheduler.place(self.plan(name="q1"))
        load = scheduler.total_load()
        scheduler.place(self.plan(name="q2"))
        scheduler.remove("q2")
        assert scheduler.total_load() == pytest.approx(load)

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(0)


class TestSimulator:
    def test_throughput_increases_with_nodes(self):
        params = ClusterParameters(nodes=1, tuple_service_seconds=1e-5)
        sim = ClusterSimulator(params)
        results = sim.sweep_nodes([1, 4, 16, 64], 32, 20, 500)
        throughputs = [r.throughput for r in results]
        assert throughputs == sorted(throughputs)
        assert throughputs[-1] > throughputs[0] * 10

    def test_speedup_sublinear_at_scale(self):
        params = ClusterParameters(nodes=1, tuple_service_seconds=1e-6)
        sim = ClusterSimulator(params)
        results = sim.sweep_nodes([1, 128], 256, 10, 1000)
        speedup = results[1].throughput / results[0].throughput
        assert speedup < 128  # the serial coordinator caps scaling

    def test_conservation(self):
        params = ClusterParameters(nodes=8)
        result = ClusterSimulator(params).run(10, 5, 100)
        assert result.tuples_processed == 10 * 5 * 100
        assert result.windows_processed == 50
        assert 0 < result.utilisation <= 1

    def test_calibrate(self):
        assert calibrate(1_000_000) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            calibrate(0)

    def test_node_count_validated(self):
        with pytest.raises(ValueError):
            ClusterParameters(nodes=0)
